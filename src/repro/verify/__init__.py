"""Static forwarding-state verification (paper Theorem 1, proved offline).

Given a frozen AS graph, per-destination FIBs and Adj-RIB-Ins, and the
MIFO deflection configuration, this package constructs the tagged
deflection relation and statically proves — or refutes with concrete
counterexample paths — (a) loop-freedom under Tag-Check, (b) valley-free
compliance of every reachable forwarding path, and (c) FIB/RIB
consistency.  See :mod:`repro.verify.checker` for the formal setup.

Entry points: ``mifo-repro verify`` on the CLI,
:func:`~repro.verify.gate.post_run_gate` as the experiments' post-run
invariant gate, and :func:`verify_forwarding_state` /
:func:`verify_routing` for library callers.
"""

from .checker import verify_forwarding_state, verify_routing
from .gate import post_run_gate, verify_cache
from .report import CHECKS, Finding, VerificationReport
from .state import DestinationState, ForwardingState

__all__ = [
    "CHECKS",
    "DestinationState",
    "Finding",
    "ForwardingState",
    "VerificationReport",
    "post_run_gate",
    "verify_cache",
    "verify_forwarding_state",
    "verify_routing",
]
