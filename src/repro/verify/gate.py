"""Post-run invariant gate for experiments.

Experiments converge a set of destinations through a
:class:`~repro.bgp.propagation.RoutingCache`; after a run, the gate
snapshots exactly those destinations' forwarding state and statically
re-proves the MIFO invariants the run relied on.  A refutation raises
:class:`~repro.errors.VerificationError` carrying the full
:class:`~repro.verify.report.VerificationReport` — so a buggy backend or
a corrupted table fails loudly instead of silently skewing results.

Wired into the CLI as ``mifo-repro run --verify`` and available to any
experiment code holding a :class:`~repro.experiments.common.SharedContext`
(which exposes it as ``ctx.verify()``).
"""

from __future__ import annotations

from collections.abc import Iterable

from ..bgp.propagation import RoutingCache
from ..errors import VerificationError
from ..topology.asgraph import ASGraph
from .checker import verify_routing
from .report import VerificationReport

__all__ = ["post_run_gate", "verify_cache"]


def verify_cache(
    graph: ASGraph,
    routing: RoutingCache,
    *,
    dests: Iterable[int] | None = None,
    capable: frozenset[int] | None = None,
    tag_check_enabled: bool = True,
) -> VerificationReport:
    """Verify the destinations a routing cache has actually computed.

    ``dests`` defaults to every cached destination — i.e. everything the
    preceding run could have forwarded along.  Snapshot queries go
    through the cache itself, so already-converged state is reused, not
    recomputed.
    """
    if dests is None:
        dests = routing.cached_destinations()
    return verify_routing(
        graph,
        routing,
        dests,
        capable=capable,
        tag_check_enabled=tag_check_enabled,
    )


def post_run_gate(
    graph: ASGraph,
    routing: RoutingCache,
    *,
    dests: Iterable[int] | None = None,
    capable: frozenset[int] | None = None,
    tag_check_enabled: bool = True,
) -> VerificationReport:
    """Assert the invariants after a run; raise on any refutation.

    ``tag_check_enabled`` should mirror the run's configuration — an
    ablation run with the check off is *expected* to refute, which is
    precisely what the raised error documents.
    """
    report = verify_cache(
        graph,
        routing,
        dests=dests,
        capable=capable,
        tag_check_enabled=tag_check_enabled,
    )
    if not report.ok:
        raise VerificationError(report)
    return report
