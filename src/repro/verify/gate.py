"""Post-run invariant gate for experiments.

Experiments converge a set of destinations through a
:class:`~repro.bgp.propagation.RoutingCache`; after a run, the gate
snapshots exactly those destinations' forwarding state and statically
re-proves the MIFO invariants the run relied on.  A refutation raises
:class:`~repro.errors.VerificationError` carrying the full
:class:`~repro.verify.report.VerificationReport` — so a buggy backend or
a corrupted table fails loudly instead of silently skewing results.

With telemetry enabled the gate additionally consumes the structured
event trace: every *recorded* deflection decision is cross-checked
against the FIB state that supposedly justified it
(:func:`crosscheck_trace`) — the static invariants prove the tables are
sound, the trace check proves the run actually obeyed them.

Wired into the CLI as ``mifo-repro run --verify`` and available to any
experiment code holding a :class:`~repro.experiments.common.SharedContext`
(which exposes it as ``ctx.verify()``).
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

from ..bgp.propagation import RoutingCache, RoutingSource
from ..errors import VerificationError
from ..mifo.tag import transit_allowed
from ..telemetry.core import EventValue
from ..topology.asgraph import ASGraph
from .checker import verify_routing
from .report import VerificationReport

__all__ = ["crosscheck_trace", "post_run_gate", "verify_cache"]


def crosscheck_trace(
    graph: ASGraph,
    routing: RoutingSource,
    events: Sequence[dict[str, EventValue]],
    *,
    capable: frozenset[int] | None = None,
    skip_epoch_tagged: bool = True,
) -> list[str]:
    """Validate recorded deflection events against current FIB state.

    For every ``deflection`` event, checks that (a) the recorded default
    next hop matches the routing view's, (b) the chosen alternative is a
    genuine RIB alternative distinct from the default, (c) the move
    passes the AS-level Tag-Check given the recorded upstream, and
    (d) the deflecting AS is MIFO-capable when ``capable`` is given.
    Returns a list of problem strings (empty = trace consistent).
    Non-deflection events pass through unexamined.

    ``skip_epoch_tagged`` — events carrying an ``epoch`` field were
    recorded against an *evolving* topology by the scenario engine, which
    cross-checks each epoch against its own FIB state before moving on;
    the end-of-run gate (whose routing snapshot is the final epoch's, or
    a different context's entirely) must not re-judge them.  Pass False
    to check such events against ``routing`` anyway (what the scenario
    engine's per-epoch gate does).
    """
    problems: list[str] = []
    for i, ev in enumerate(events):
        if ev.get("kind") != "deflection":
            continue
        if skip_epoch_tagged and "epoch" in ev:
            continue
        u, dst = ev.get("as"), ev.get("dst")
        chosen, default_nh = ev.get("chosen"), ev.get("default_nh")
        if not (
            isinstance(u, int)
            and isinstance(dst, int)
            and isinstance(chosen, int)
            and isinstance(default_nh, int)
        ):
            problems.append(f"event {i}: deflection record missing int fields")
            continue
        upstream = ev.get("upstream")
        if upstream is not None and not isinstance(upstream, int):
            problems.append(f"event {i}: upstream {upstream!r} is not an AS")
            continue
        if capable is not None and u not in capable:
            problems.append(
                f"event {i}: AS {u} deflected but is not MIFO-capable"
            )
        view = routing(dst)
        actual_nh = view.next_hop(u)
        if actual_nh != default_nh:
            problems.append(
                f"event {i}: AS {u} -> {dst} recorded default next hop "
                f"{default_nh}, FIB says {actual_nh}"
            )
        if chosen == default_nh:
            problems.append(
                f"event {i}: AS {u} 'deflected' to its default next hop "
                f"{default_nh}"
            )
        if all(e.neighbor != chosen for e in view.rib(u)):
            problems.append(
                f"event {i}: AS {u} deflected to {chosen}, which is not in "
                f"its RIB toward {dst}"
            )
        elif not transit_allowed(graph, upstream, u, chosen):
            problems.append(
                f"event {i}: deflection {upstream} -> {u} -> {chosen} "
                f"violates the valley-free Tag-Check"
            )
    return problems


def verify_cache(
    graph: ASGraph,
    routing: RoutingCache,
    *,
    dests: Iterable[int] | None = None,
    capable: frozenset[int] | None = None,
    tag_check_enabled: bool = True,
) -> VerificationReport:
    """Verify the destinations a routing cache has actually computed.

    ``dests`` defaults to every cached destination — i.e. everything the
    preceding run could have forwarded along.  Snapshot queries go
    through the cache itself, so already-converged state is reused, not
    recomputed.
    """
    if dests is None:
        dests = routing.cached_destinations()
    return verify_routing(
        graph,
        routing,
        dests,
        capable=capable,
        tag_check_enabled=tag_check_enabled,
    )


def post_run_gate(
    graph: ASGraph,
    routing: RoutingCache,
    *,
    dests: Iterable[int] | None = None,
    capable: frozenset[int] | None = None,
    tag_check_enabled: bool = True,
    events: Sequence[dict[str, EventValue]] | None = None,
) -> VerificationReport:
    """Assert the invariants after a run; raise on any refutation.

    ``tag_check_enabled`` should mirror the run's configuration — an
    ablation run with the check off is *expected* to refute, which is
    precisely what the raised error documents.

    ``events`` (a recorded telemetry trace) additionally runs
    :func:`crosscheck_trace`; an inconsistent trace raises just like a
    refuted invariant.
    """
    report = verify_cache(
        graph,
        routing,
        dests=dests,
        capable=capable,
        tag_check_enabled=tag_check_enabled,
    )
    if not report.ok:
        raise VerificationError(report)
    if events:
        problems = crosscheck_trace(graph, routing, events, capable=capable)
        if problems:
            raise VerificationError(
                "recorded trace disagrees with FIB state:\n  "
                + "\n  ".join(problems)
            )
    return report
