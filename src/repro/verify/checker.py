"""The static checks: prove or refute MIFO's forwarding invariants.

The object analyzed is the **tagged deflection relation** — for one
destination, a finite directed graph over states ``(AS, tag bit)`` where
the bit is the paper's one-bit Tag (Section III-A4): ``True`` iff the
packet entered this AS from a customer (or originated locally).  Each
state has at most one *default* edge (the FIB next hop, always available
— a congested default with no usable alternative still forwards on the
default) and, when the AS is MIFO-capable, one *deflect* edge per
non-default Adj-RIB-In neighbor that Tag-Check admits.  Congestion is
treated adversarially: any deflect edge may be taken, so the relation
over-approximates every congestion pattern at once — proofs over it hold
for *all* dynamic executions.

Three invariants, checked per destination:

* **fib-rib-consistency** — every FIB next hop is a graph neighbor and is
  backed by an Adj-RIB-In entry, and every RIB entry names a real
  neighbor with the true business relationship (a lied-about relationship
  would let Tag-Check admit a valley);
* **valley-freedom** — every edge *reachable from a traffic source*
  satisfies Eq. 3 (``check_bit``: bit set or downstream is a customer).
  Per-hop Eq. 3 along a walk is equivalent to the global
  ``up* peer? down*`` valley-free shape, which is exactly the paper's
  "one more bit is enough" argument;
* **loop-freedom** — the reachable part of the relation is acyclic.  The
  dynamic walk's choices are a subset of the relation's edges, so
  acyclicity here implies no packet can revisit a forwarding state
  (Theorem 1 made static).  A cycle is reported with its stem from a
  source, mirroring the packet that would spin.

Counterexamples are concrete AS walks (see
:class:`~repro.verify.report.Finding`), which is what the adversarial
test configurations assert on.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Iterable, Iterator

from ..mifo.tag import check_bit
from ..telemetry import Stopwatch
from ..topology.asgraph import ASGraph
from ..topology.relationships import Relationship
from .report import Finding, VerificationReport
from .state import DestinationState, ForwardingState, RoutingFn

__all__ = ["verify_forwarding_state", "verify_routing"]

#: One state of the tagged deflection relation: (AS number, tag bit).
State = tuple[int, bool]


def _entry_bit(rel_of_next_seen_from_here: Relationship) -> bool:
    """Tag bit after traversing a link whose far end has this relationship.

    The next AS sees us as a customer exactly when we see it as a
    provider — that is the ``V_{i-1} < V_i`` case that sets the bit.
    """
    return rel_of_next_seen_from_here is Relationship.PROVIDER


class _DestinationChecker:
    """Runs all three checks for one destination's tables."""

    def __init__(self, fs: ForwardingState, table: DestinationState) -> None:
        self.fs = fs
        self.graph = fs.graph
        self.table = table
        self.dest = table.dest
        self.findings: list[Finding] = []
        #: states discovered by the reachability pass, with BFS parents
        #: for counterexample reconstruction (origins map to None).
        self._parent: dict[State, State | None] = {}
        self.n_edges = 0

    # ------------------------------------------------------------------
    # the relation
    # ------------------------------------------------------------------
    def successors(self, u: int, bit: bool) -> Iterator[tuple[int, bool, str]]:
        """Edges out of state ``(u, bit)`` as ``(next AS, next bit, kind)``.

        Enumeration order is deterministic: the default edge first, then
        deflect edges in RIB preference order.  Entries the consistency
        check already flagged (non-adjacent neighbors) are skipped so one
        broken table does not cascade into spurious findings.
        """
        if u == self.dest:
            return
        graph = self.graph
        nh = self.table.fib.get(u)
        if nh is not None and graph.are_adjacent(u, nh):
            yield nh, _entry_bit(graph.relationship(u, nh)), "default"
        if u not in self.fs.capable:
            return
        for entry in self.table.rib.get(u, ()):
            v = entry.neighbor
            if v == nh or not graph.are_adjacent(u, v):
                continue
            rel = graph.relationship(u, v)
            if self.fs.tag_check_enabled and not check_bit(bit, rel):
                continue
            yield v, _entry_bit(rel), "deflect"

    def _walk_to(self, state: State) -> list[int]:
        """AS path from the origin of ``state``'s BFS tree to ``state``."""
        hops: list[int] = []
        cur: State | None = state
        while cur is not None:
            hops.append(cur[0])
            cur = self._parent[cur]
        hops.reverse()
        return hops

    # ------------------------------------------------------------------
    # check 1: FIB/RIB consistency
    # ------------------------------------------------------------------
    def check_consistency(self) -> None:
        """Prove every FIB entry is backed by the RIB state."""
        graph = self.graph
        table = self.table
        for u in sorted(table.fib):
            nh = table.fib[u]
            if u == self.dest:
                self._finding(
                    "fib-rib-consistency", (u, nh),
                    f"destination AS {u} must not hold a FIB entry toward itself",
                )
                continue
            if not graph.are_adjacent(u, nh):
                self._finding(
                    "fib-rib-consistency", (u, nh),
                    f"FIB next hop {nh} of AS {u} is not a neighbor in the AS graph",
                )
                continue
            backing = [e for e in table.rib.get(u, ()) if e.neighbor == nh]
            if not backing:
                self._finding(
                    "fib-rib-consistency", (u, nh),
                    f"dangling FIB entry: next hop {nh} of AS {u} is backed by "
                    f"no Adj-RIB-In route",
                )
        for u in sorted(table.rib):
            for entry in table.rib[u]:
                v = entry.neighbor
                if not graph.are_adjacent(u, v):
                    self._finding(
                        "fib-rib-consistency", (u, v),
                        f"Adj-RIB-In of AS {u} names {v}, not a neighbor in the "
                        f"AS graph",
                    )
                    continue
                true_rel = graph.relationship(u, v)
                if entry.relationship is not true_rel:
                    self._finding(
                        "fib-rib-consistency", (u, v),
                        f"Adj-RIB-In of AS {u} records neighbor {v} as "
                        f"{entry.relationship.name} but the AS graph says "
                        f"{true_rel.name}",
                    )

    # ------------------------------------------------------------------
    # check 2: reachability + valley-freedom (one BFS does both)
    # ------------------------------------------------------------------
    def check_valley_freedom(self) -> None:
        """BFS the relation from every traffic source; Eq. 3 every edge.

        Sources enter with the bit set (a locally originated packet may
        take its first step in any direction).  Violating edges are still
        traversed — with Tag-Check disabled the data plane would forward
        through the valley, and downstream states must be explored for
        the loop check to be sound.
        """
        parent = self._parent
        queue: deque[State] = deque()
        for u in sorted(self.table.fib):
            if u == self.dest:
                continue
            origin: State = (u, True)
            if origin not in parent:
                parent[origin] = None
                queue.append(origin)
        seen_violations: set[tuple[int, bool, int]] = set()
        while queue:
            u, bit = queue.popleft()
            for v, nbit, kind in self.successors(u, bit):
                self.n_edges += 1
                rel = self.graph.relationship(u, v)
                if not check_bit(bit, rel) and (u, bit, v) not in seen_violations:
                    seen_violations.add((u, bit, v))
                    path = self._walk_to((u, bit)) + [v]
                    upstream = "origin" if len(path) == 2 else "non-customer"
                    self._finding(
                        "valley-freedom", tuple(path),
                        f"valley at AS {u}: packet arrived from a {upstream} "
                        f"neighbor (tag bit 0) yet {kind} forwarding continues "
                        f"to {rel.name.lower()} {v} — Eq. 3 violated",
                    )
                nxt: State = (v, nbit)
                if nxt not in parent:
                    parent[nxt] = (u, bit)
                    queue.append(nxt)

    # ------------------------------------------------------------------
    # check 3: loop-freedom
    # ------------------------------------------------------------------
    def check_loop_freedom(self) -> None:
        """DFS the reachable relation for a cycle; report stem + cycle.

        One counterexample per destination is enough to refute — after
        the first cycle the search stops rather than enumerating every
        rotation of the same loop.
        """
        WHITE, GRAY, BLACK = 0, 1, 2
        color: dict[State, int] = {}
        for root in self._parent:
            if self._parent[root] is not None or color.get(root, WHITE) != WHITE:
                continue
            stack: list[tuple[State, Iterator[tuple[int, bool, str]]]] = [
                (root, self.successors(*root))
            ]
            color[root] = GRAY
            onstack: list[State] = [root]
            while stack:
                state, it = stack[-1]
                advanced = False
                for v, nbit, _kind in it:
                    nxt: State = (v, nbit)
                    c = color.get(nxt, WHITE)
                    if c == GRAY:
                        cycle_states = onstack[onstack.index(nxt):] + [nxt]
                        stem = self._walk_to(nxt)
                        path = stem + [s[0] for s in cycle_states[1:]]
                        self._finding(
                            "loop-freedom", tuple(path),
                            f"forwarding cycle of {len(cycle_states) - 1} "
                            f"hop(s) reachable from AS {stem[0]}: "
                            + " -> ".join(str(s[0]) for s in cycle_states),
                            cycle_start=len(stem) - 1,
                        )
                        return
                    if c == WHITE:
                        color[nxt] = GRAY
                        onstack.append(nxt)
                        stack.append((nxt, self.successors(*nxt)))
                        advanced = True
                        break
                if not advanced:
                    color[state] = BLACK
                    onstack.pop()
                    stack.pop()

    # ------------------------------------------------------------------
    def _finding(
        self,
        check: str,
        path: tuple[int, ...],
        detail: str,
        *,
        cycle_start: int | None = None,
    ) -> None:
        self.findings.append(
            Finding(
                check=check,
                dest=self.dest,
                path=tuple(path),
                detail=detail,
                cycle_start=cycle_start,
            )
        )

    def run(self) -> None:
        """Run all three static checks in order."""
        self.check_consistency()
        self.check_valley_freedom()
        self.check_loop_freedom()

    @property
    def n_states(self) -> int:
        """States explored by the loop-freedom search."""
        return len(self._parent)


def verify_forwarding_state(fs: ForwardingState) -> VerificationReport:
    """Run every check on every destination table of a snapshot."""
    watch = Stopwatch()
    findings: list[Finding] = []
    n_states = 0
    n_edges = 0
    for table in fs.tables:
        checker = _DestinationChecker(fs, table)
        checker.run()
        findings.extend(checker.findings)
        n_states += checker.n_states
        n_edges += checker.n_edges
    return VerificationReport(
        ok=not findings,
        findings=tuple(findings),
        n_destinations=len(fs.tables),
        n_states=n_states,
        n_edges=n_edges,
        tag_check_enabled=fs.tag_check_enabled,
        elapsed_s=watch.elapsed,
    )


def verify_routing(
    graph: ASGraph,
    routing: RoutingFn,
    dests: Iterable[int],
    *,
    capable: frozenset[int] | None = None,
    tag_check_enabled: bool = True,
) -> VerificationReport:
    """Snapshot live control-plane state and verify it in one call."""
    fs = ForwardingState.from_routing(
        graph,
        routing,
        sorted(dests),
        capable=capable,
        tag_check_enabled=tag_check_enabled,
    )
    return verify_forwarding_state(fs)
