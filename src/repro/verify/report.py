"""Machine-readable verdicts of the static forwarding-state verifier.

A check either **proves** its invariant (no findings) or **refutes** it
with one :class:`Finding` per violation, each carrying a concrete
counterexample path — the artifact an operator (or a failing CI job) needs
to see which tables are broken and how a packet would exercise the break.
"""

from __future__ import annotations

import dataclasses
import json
from typing import Any

__all__ = ["CHECKS", "Finding", "VerificationReport"]

#: The three invariants, in the order they are checked.
CHECKS: tuple[str, ...] = ("fib-rib-consistency", "valley-freedom", "loop-freedom")


@dataclasses.dataclass(frozen=True, slots=True)
class Finding:
    """One refuted invariant, with its counterexample.

    ``path`` is an AS-level walk witnessing the violation: for a loop it
    is a stem from some traffic source followed by the repeating cycle
    (``cycle_start`` indexes the first repeated AS); for a valley it ends
    with the hop that violates Eq. 3; for a consistency error it is the
    ``(owner, next_hop)`` pair of the dangling entry.
    """

    check: str
    dest: int
    path: tuple[int, ...]
    detail: str
    cycle_start: int | None = None

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready dict of this finding."""
        d: dict[str, Any] = {
            "check": self.check,
            "dest": self.dest,
            "path": list(self.path),
            "detail": self.detail,
        }
        if self.cycle_start is not None:
            d["cycle_start"] = self.cycle_start
        return d


@dataclasses.dataclass(frozen=True)
class VerificationReport:
    """Outcome of verifying one :class:`~repro.verify.state.ForwardingState`.

    ``ok`` means every check proved its invariant for every destination.
    ``n_states``/``n_edges`` size the explored tagged deflection relation
    (the micro-benchmark tracks them against wall time), and ``elapsed_s``
    is the verifier's own cost.
    """

    ok: bool
    findings: tuple[Finding, ...]
    n_destinations: int
    n_states: int
    n_edges: int
    tag_check_enabled: bool
    elapsed_s: float

    def findings_for(self, check: str) -> tuple[Finding, ...]:
        """Findings produced by one named check."""
        return tuple(f for f in self.findings if f.check == check)

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready dict of the whole report."""
        return {
            "ok": self.ok,
            "findings": [f.to_dict() for f in self.findings],
            "n_destinations": self.n_destinations,
            "n_states": self.n_states,
            "n_edges": self.n_edges,
            "tag_check_enabled": self.tag_check_enabled,
            "elapsed_s": self.elapsed_s,
        }

    def to_json(self, *, indent: int | None = None) -> str:
        """JSON string of :meth:`to_dict`."""
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    def render(self) -> str:
        """Human-readable summary (the CLI prints this)."""
        head = "PROVED" if self.ok else "REFUTED"
        lines = [
            f"{head}: {self.n_destinations} destination(s), "
            f"{self.n_states} states, {self.n_edges} edges, "
            f"tag-check {'on' if self.tag_check_enabled else 'off'}, "
            f"{self.elapsed_s:.3f}s"
        ]
        for check in CHECKS:
            found = self.findings_for(check)
            if not found:
                lines.append(f"  {check:20s} proved")
                continue
            lines.append(f"  {check:20s} REFUTED ({len(found)} finding(s))")
            for f in found[:5]:
                walk = " -> ".join(map(str, f.path))
                lines.append(f"    dest {f.dest}: {walk}")
                lines.append(f"      {f.detail}")
            if len(found) > 5:
                lines.append(f"    ... {len(found) - 5} more")
        return "\n".join(lines)
