"""Frozen forwarding-state snapshots — the verifier's input.

The dynamic pipeline proves MIFO's invariants by *running* packets and
asserting nothing loops (``MifoPathBuilder`` raises
:class:`~repro.errors.LoopDetectedError` on a repeated directed link).  The
static verifier instead takes a **snapshot** of everything the data plane
could ever consult — the frozen :class:`~repro.topology.asgraph.ASGraph`,
one FIB (default next hop) and one Adj-RIB-In (deflection table) per
destination, the MIFO-capable set and the Tag-Check switch — and proves or
refutes the invariants from the tables alone, without enumerating packets
or congestion patterns.

Snapshots come from two places:

* :meth:`ForwardingState.from_routing` freezes the live control plane (a
  :class:`~repro.bgp.propagation.RoutingCache` or any per-destination
  routing callable) — this is what ``mifo-repro verify`` and the post-run
  experiment gate use;
* the raw constructors accept hand-built tables, which is how the
  adversarial test suite injects valleys, deflection cycles and dangling
  FIB entries the verifier must refute.
"""

from __future__ import annotations

import dataclasses
from collections.abc import Callable, Iterable, Mapping

from ..bgp.propagation import RibEntry
from ..errors import TopologyError
from ..topology.asgraph import ASGraph

__all__ = ["DestinationState", "ForwardingState", "RoutingFn"]

#: Anything that can answer per-destination routing queries the way
#: :class:`~repro.bgp.propagation.DestinationRouting` does.  Both backends
#: and the :class:`~repro.bgp.propagation.RoutingCache` qualify.
RoutingFn = Callable[[int], object]


@dataclasses.dataclass(frozen=True)
class DestinationState:
    """FIB + Adj-RIB-In of every AS toward one destination.

    ``fib`` maps each AS holding a route (other than the destination) to
    its default next hop.  ``rib`` maps an AS to its Adj-RIB-In entries in
    selection-preference order; the deflection table of a MIFO-capable AS
    is exactly the non-default entries of its RIB (paper Section II-B:
    alternatives come from the RIB at zero control-plane overhead).
    Either table may be adversarially inconsistent — detecting that is the
    verifier's job, so no invariants are enforced here.
    """

    dest: int
    fib: Mapping[int, int]
    rib: Mapping[int, tuple[RibEntry, ...]]

    def deflection_table(self, capable: frozenset[int]) -> dict[int, tuple[int, ...]]:
        """Non-default RIB neighbors per MIFO-capable AS (diagnostics)."""
        out: dict[int, tuple[int, ...]] = {}
        for u, entries in self.rib.items():
            if u not in capable:
                continue
            default = self.fib.get(u)
            alts = tuple(e.neighbor for e in entries if e.neighbor != default)
            if alts:
                out[u] = alts
        return out


@dataclasses.dataclass(frozen=True)
class ForwardingState:
    """Complete data-plane snapshot the static checks run against."""

    graph: ASGraph
    tables: tuple[DestinationState, ...]
    capable: frozenset[int]
    tag_check_enabled: bool = True

    def __post_init__(self) -> None:
        if not self.graph.frozen:
            raise TopologyError("freeze() the graph before snapshotting state")

    @classmethod
    def from_routing(
        cls,
        graph: ASGraph,
        routing: RoutingFn,
        dests: Iterable[int],
        *,
        capable: frozenset[int] | None = None,
        tag_check_enabled: bool = True,
    ) -> "ForwardingState":
        """Snapshot converged control-plane state for ``dests``.

        ``capable`` defaults to every AS — the strongest deployment, hence
        the strongest thing to prove (any subset only removes deflection
        edges from the relation, never adds one).
        """
        if capable is None:
            capable = frozenset(graph.nodes())
        tables = []
        for dest in dict.fromkeys(dests):
            r = routing(dest)
            fib: dict[int, int] = {}
            rib: dict[int, tuple[RibEntry, ...]] = {}
            for x in graph.nodes():
                if x == dest or not r.has_route(x):  # type: ignore[attr-defined]
                    continue
                nh = r.next_hop(x)  # type: ignore[attr-defined]
                if nh is not None:
                    fib[x] = nh
                rib[x] = tuple(r.rib(x))  # type: ignore[attr-defined]
            tables.append(DestinationState(dest=dest, fib=fib, rib=rib))
        return cls(
            graph=graph,
            tables=tuple(tables),
            capable=capable,
            tag_check_enabled=tag_check_enabled,
        )

    @property
    def destinations(self) -> tuple[int, ...]:
        """Destinations covered, in table order."""
        return tuple(t.dest for t in self.tables)
