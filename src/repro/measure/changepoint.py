"""Online changepoint detection over scalar series (pure python, no RNG).

:func:`pelt` implements the Pruned Exact Linear Time search of Killick,
Fearnhead & Eckley (2012) over the Gaussian mean-shift cost — the sum of
per-segment squared deviations from the segment mean — with a constant
per-changepoint penalty.  It is exact (identical to optimal-partitioning
dynamic programming) and the pruning keeps the candidate set small on
well-separated regimes.

:class:`OnlineDetector` wraps the offline search for streaming use: each
series keeps a bounded window of recent ``(value, epoch)`` samples,
re-runs the pruned search on every push, and raises a :class:`CpAlarm`
when a *new* changepoint stabilises (``confirm`` samples observed after
the estimated shift index).  A cheap baseline-ratio ``"threshold"`` mode
shares the same state layout so both detectors checkpoint identically.

Everything here is deterministic plain-python arithmetic — a pure
function of the pushed ``(value, epoch)`` sequence.  There is no RNG,
no clock, and no numpy, so results are bitwise reproducible across
routing backends and across checkpoint restore.
"""

from __future__ import annotations

import dataclasses

from ..errors import ConfigError

__all__ = ["CpAlarm", "DetectorConfig", "OnlineDetector", "pelt"]


class _PeltDP:
    """Append-only form of the PELT dynamic program.

    The search is sequential in ``t``: the program state after consuming
    ``t`` samples depends only on ``values[:t]``, so appending a sample
    extends a cached run by one O(|candidates|) step instead of paying
    the O(n^2) scratch search again.  Every float operation is evaluated
    in the same order as the scratch run, so cached and uncached
    searches return bitwise-identical splits; :class:`OnlineDetector`
    rebuilds the cache from scratch whenever its window slides or after
    a checkpoint restore, which keeps the incremental path a pure
    optimisation rather than an approximation.
    """

    __slots__ = ("penalty", "min_size", "n", "_csum", "_csq", "_best", "_prev", "_cands")

    def __init__(self, penalty: float, min_size: int) -> None:
        self.penalty = penalty
        self.min_size = min_size
        self.n = 0
        self._csum = [0.0]
        self._csq = [0.0]
        self._best = [-penalty]
        self._prev = [0]
        self._cands = [0]

    def append(self, x: float) -> None:
        """Extend the program by one sample (one O(|candidates|) DP step)."""
        csum = self._csum
        csq = self._csq
        csum.append(csum[-1] + x)
        csq.append(csq[-1] + x * x)
        self.n = t = self.n + 1
        min_size = self.min_size
        best_cost = self._best
        if t < min_size:
            best_cost.append(float("inf"))
            self._prev.append(0)
            return
        penalty = self.penalty
        ct = csum[t]
        qt = csq[t]
        best = float("inf")
        arg = 0
        cands = self._cands
        bases = [0.0] * len(cands)
        for i, s in enumerate(cands):
            sx = ct - csum[s]
            base = best_cost[s] + (qt - csq[s] - sx * sx / (t - s))
            bases[i] = base
            if t - s < min_size:
                continue
            v = base + penalty
            if v < best:
                best = v
                arg = s
        best_cost.append(best)
        self._prev.append(arg)
        kept = [s for i, s in enumerate(cands) if bases[i] <= best]
        kept.append(t)
        self._cands = kept

    def splits(self) -> list[int]:
        """Sorted interior split indices of the consumed prefix."""
        out: list[int] = []
        prev = self._prev
        t = self.n
        while t > 0:
            s = prev[t]
            if s > 0:
                out.append(s)
            t = s
        out.reverse()
        return out


def pelt(values: list[float], penalty: float, min_size: int = 2) -> list[int]:
    """Exact penalised changepoint positions for ``values``.

    Returns the sorted interior split indices ``g`` (each segment is
    ``values[prev:g]``) minimising the Gaussian mean-shift cost plus
    ``penalty`` per split, with every segment at least ``min_size``
    long.  An empty list means one homogeneous segment.
    """
    if len(values) < 2 * min_size:
        return []
    dp = _PeltDP(penalty, min_size)
    for x in values:
        dp.append(x)
    return dp.splits()


@dataclasses.dataclass(frozen=True)
class CpAlarm:
    """A confirmed regime shift in one series.

    ``index`` is the global sample index of the first post-shift sample,
    ``epoch`` the epoch recorded with that sample, ``direction`` the
    sign of the level change, and ``before``/``after`` the segment means
    either side of the shift.
    """

    index: int
    epoch: int
    direction: str
    before: float
    after: float


@dataclasses.dataclass(frozen=True)
class DetectorConfig:
    """Shared knobs for both online detector modes.

    ``mode`` selects the algorithm: ``"changepoint"`` (windowed PELT) or
    ``"threshold"`` (baseline-ratio with a confirmation streak).
    ``penalty`` is the PELT per-split penalty in squared sample units;
    ``window`` bounds per-series memory; ``min_size`` is the minimum
    segment length (also the refractory spacing between alarms);
    ``confirm`` is how many post-shift samples must be seen before
    alarming; ``factor`` is the threshold mode's baseline ratio and
    ``warmup`` its baseline-estimation prefix length.
    """

    mode: str = "changepoint"
    penalty: float = 12.0
    window: int = 48
    min_size: int = 2
    confirm: int = 2
    factor: float = 1.6
    warmup: int = 5

    def validate(self) -> None:
        """Raise :class:`~repro.errors.ConfigError` on bad knobs."""
        if self.mode not in ("changepoint", "threshold"):
            raise ConfigError(f"unknown detector mode: {self.mode!r}")
        if self.penalty <= 0:
            raise ConfigError("penalty must be positive")
        if self.min_size < 1:
            raise ConfigError("min_size must be >= 1")
        if self.window < 4 * self.min_size:
            raise ConfigError("window must be >= 4 * min_size")
        if not 1 <= self.confirm <= self.window:
            raise ConfigError("confirm must be in [1, window]")
        if self.factor <= 1.0:
            raise ConfigError("factor must exceed 1.0")
        if self.warmup < 1:
            raise ConfigError("warmup must be >= 1")


class OnlineDetector:
    """Streaming detector over one scalar series.

    Push samples with :meth:`push`; a non-``None`` return is a confirmed
    :class:`CpAlarm`.  State is a bounded window plus a few integers, so
    the whole detector serialises into a checkpoint row and restores
    bitwise (see ``repro.service.checkpoint``).
    """

    __slots__ = (
        "config",
        "_cp_values",
        "_cp_epochs",
        "_cp_base",
        "_cp_count",
        "_cp_last",
        "_cp_streak",
        "_cp_baseline",
        "_pelt_dp",
        "_tss_cache",
    )

    def __init__(self, config: DetectorConfig | None = None) -> None:
        self.config = config if config is not None else DetectorConfig()
        self.config.validate()
        #: bounded sample window and the epochs they were taken at
        self._cp_values: list[float] = []
        self._cp_epochs: list[int] = []
        #: global index of ``_cp_values[0]`` (windows slide forward)
        self._cp_base = 0
        #: total samples ever pushed
        self._cp_count = 0
        #: global index of the last alarmed shift (refractory anchor)
        self._cp_last = 0
        #: signed consecutive-deviation streak (threshold mode)
        self._cp_streak = 0
        #: current regime level estimate (threshold mode; None = unset)
        self._cp_baseline: float | None = None
        #: incremental PELT program over the current window — derived
        #: cache, never checkpointed; rebuilt lazily after restore
        self._pelt_dp: _PeltDP | None = None  # mifocheck: derivable: cache over _cp_values, rebuilt lazily by _push_pelt
        #: running window sums ``(n, sum, sum_sq)`` backing the O(1)
        #: homogeneity bound — derived cache, never checkpointed
        self._tss_cache: tuple[int, float, float] | None = None  # mifocheck: derivable: cache over _cp_values, rebuilt lazily by _push_pelt

    def push(self, value: float, epoch: int) -> CpAlarm | None:
        """Observe one sample; return a confirmed alarm or ``None``."""
        self._cp_values.append(float(value))
        self._cp_epochs.append(int(epoch))
        self._cp_count += 1
        overflow = len(self._cp_values) - self.config.window
        if overflow > 0:
            del self._cp_values[:overflow]
            del self._cp_epochs[:overflow]
            self._cp_base += overflow
        if self.config.mode == "threshold":
            return self._push_threshold(float(value))
        return self._push_pelt()

    @property
    def count(self) -> int:
        """Total samples pushed over the series lifetime."""
        return self._cp_count

    def _push_pelt(self) -> CpAlarm | None:
        """Extend the windowed PELT program; alarm on the earliest new
        stable split.

        Two exact shortcuts keep the per-push cost near O(1) on quiet
        series.  First, while the window's total sum of squared
        deviations stays under 0.9x the penalty, no segmentation can
        win: every split costs ``penalty`` and segment costs are
        non-negative, so any split solution costs at least ``penalty``
        while the zero-split solution costs TSS — strictly less, and
        the 10% margin exceeds float rounding by many orders of
        magnitude.  The search provably returns no splits, so the
        dynamic program is not even built in that regime.  Second, once built, the program is
        cached and extended one step per push; a slide or a restore
        leaves it stale, and a stale cache is rebuilt from scratch —
        the rebuild replays identical arithmetic, so alarms are
        bitwise-identical whichever path ran."""
        cfg = self.config
        vals = self._cp_values
        n = len(vals)
        if n < 2 * cfg.min_size or self._cp_count <= cfg.warmup:
            return None
        dp = self._pelt_dp
        if dp is not None and dp.n == n - 1:
            dp.append(vals[-1])
        else:
            cache = self._tss_cache
            if cache is not None and cache[0] == n - 1:
                s1 = cache[1] + vals[-1]
                s2 = cache[2] + vals[-1] * vals[-1]
            else:
                s1 = 0.0
                s2 = 0.0
                for x in vals:
                    s1 += x
                    s2 += x * x
            self._tss_cache = (n, s1, s2)
            if s2 - s1 * s1 / n < 0.9 * cfg.penalty:
                return None  # provably splitless window
            dp = _PeltDP(cfg.penalty, cfg.min_size)
            for x in vals:
                dp.append(x)
            self._pelt_dp = dp
        splits = dp.splits()
        for g in splits:
            global_g = self._cp_base + g
            if global_g < self._cp_last + cfg.min_size:
                continue  # refinement of an already-alarmed shift
            if len(vals) - g < cfg.confirm:
                continue  # not yet confirmed; next pushes retry
            seg_start = 0
            for s in splits:
                if s < g:
                    seg_start = s
            before = sum(vals[seg_start:g]) / (g - seg_start)
            after = sum(vals[g:]) / (len(vals) - g)
            self._cp_last = global_g
            return CpAlarm(
                index=global_g,
                epoch=self._cp_epochs[g],
                direction="up" if after > before else "down",
                before=before,
                after=after,
            )
        return None

    def _push_threshold(self, value: float) -> CpAlarm | None:
        """Baseline-ratio deviation with a confirmation streak."""
        cfg = self.config
        if self._cp_count <= cfg.warmup:
            return None
        if self._cp_baseline is None:
            prefix = sorted(self._cp_values[: cfg.warmup])
            mid = len(prefix) // 2
            if len(prefix) % 2:
                self._cp_baseline = prefix[mid]
            else:
                self._cp_baseline = 0.5 * (prefix[mid - 1] + prefix[mid])
        base = self._cp_baseline
        if value > base * cfg.factor:
            step = 1
        elif value < base / cfg.factor:
            step = -1
        else:
            self._cp_streak = 0
            return None
        if self._cp_streak * step <= 0:
            self._cp_streak = step
        else:
            self._cp_streak += step
        run = abs(self._cp_streak)
        if run < cfg.confirm:
            return None
        g = len(self._cp_values) - run
        global_g = self._cp_base + g
        self._cp_streak = 0
        if global_g < self._cp_last + cfg.min_size:
            return None  # still inside the refractory window
        self._cp_last = global_g
        before = base
        self._cp_baseline = value  # rebase onto the new regime
        return CpAlarm(
            index=global_g,
            epoch=self._cp_epochs[g],
            direction="up" if step > 0 else "down",
            before=before,
            after=value,
        )
