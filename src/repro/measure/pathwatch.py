"""Forwarding-pattern analysis over a JSONL trace log.

``pathwatch`` answers "did the paths actually move when (and only when)
something happened?" from the trace alone: it correlates observed
``path_switch`` events against the ground-truth ``scenario_event``
entries, reporting per-flow switch counts, per-epoch churn, and the
fraction of switches that land within a window after some ground-truth
event (the alignment — 1.0 means no unexplained churn).

Works on any iterable of decoded trace dicts, e.g.
``repro.telemetry.trace.read_jsonl(path)``.
"""

from __future__ import annotations

import dataclasses
from typing import Iterable, Mapping

__all__ = ["PathWatchReport", "watch_paths"]

#: scenario_event labels that cannot move paths (no churn expected)
_QUIET_EVENTS = ("initial", "measure_tick")


@dataclasses.dataclass(frozen=True)
class PathWatchReport:
    """Observed path churn vs ground-truth scenario events."""

    flows_observed: int
    switch_events: int
    switches_by_flow: dict[int, int]
    churn_by_epoch: dict[int, int]
    truth_epochs: tuple[int, ...]
    aligned_switches: int

    @property
    def alignment(self) -> float:
        """Fraction of switches within the window after a truth epoch."""
        if self.switch_events == 0:
            return 1.0
        return self.aligned_switches / self.switch_events


def watch_paths(
    events: Iterable[Mapping[str, object]], *, window: int = 4
) -> PathWatchReport:
    """Correlate observed path churn against ground-truth events."""
    if window < 0:
        raise ValueError("window must be >= 0")
    flows: set[int] = set()
    switches_by_flow: dict[int, int] = {}
    churn_by_epoch: dict[int, int] = {}
    switch_epochs: list[int] = []
    truth_epochs: list[int] = []
    for event in events:
        kind = event.get("kind")
        flow = event.get("flow")
        if isinstance(flow, int):
            flows.add(flow)
        if kind == "scenario_event":
            epoch = event.get("epoch")
            if isinstance(epoch, int) and event.get("event") not in _QUIET_EVENTS:
                truth_epochs.append(epoch)
        elif kind == "path_switch":
            if isinstance(flow, int):
                switches_by_flow[flow] = switches_by_flow.get(flow, 0) + 1
            epoch = event.get("epoch")
            if isinstance(epoch, int):
                churn_by_epoch[epoch] = churn_by_epoch.get(epoch, 0) + 1
                switch_epochs.append(epoch)

    aligned = sum(
        1
        for e in switch_epochs
        if any(t <= e <= t + window for t in truth_epochs)
    )
    return PathWatchReport(
        flows_observed=len(flows),
        switch_events=sum(switches_by_flow.values()),
        switches_by_flow=switches_by_flow,
        churn_by_epoch=churn_by_epoch,
        truth_epochs=tuple(truth_epochs),
        aligned_switches=aligned,
    )
