"""Score detected changepoints against planted ground truth.

The scenario engine plants regime shifts at known epochs (the
``congestion_onset`` events of a timeline); detectors report estimated
shift epochs (``cp_epoch``) some epochs later (``epoch``).  Scoring is
windowed: a detection is a true positive when its estimated shift falls
within ``[t - slack, t + window]`` of some planted truth ``t``, a truth
is recalled when at least one detection matches it, and detection delay
is measured from the truth epoch to the earliest matching alarm epoch.
The ``slack`` (default one epoch) absorbs the one-sample localisation
error inherent to penalised least-squares changepoint estimates: with a
short confirmation horizon the split that lumps one pre-shift sample
into the new regime can confirm first.
"""

from __future__ import annotations

import dataclasses
from typing import Iterable, Mapping, Sequence

__all__ = [
    "ChangepointScore",
    "detections_from_trace",
    "planted_changepoints",
    "score_changepoints",
]


@dataclasses.dataclass(frozen=True)
class ChangepointScore:
    """Windowed precision/recall/delay of a detection run.

    ``precision`` is TP / detections (1.0 when nothing was detected),
    ``recall`` the fraction of planted truths matched (1.0 when nothing
    was planted), ``mean_delay_epochs`` the mean over recalled truths of
    (earliest matching alarm epoch - truth epoch).
    """

    precision: float
    recall: float
    true_positives: int
    false_positives: int
    detected_truths: int
    missed_truths: tuple[int, ...]
    mean_delay_epochs: float


def planted_changepoints(spec: object) -> tuple[int, ...]:
    """Ground-truth shift epochs of a scenario spec.

    Timeline entry ``i`` is processed at engine epoch ``i + 1`` (epoch 0
    is initial routing), so every ``congestion_onset`` event at timeline
    position ``i`` plants a truth at epoch ``i + 1``.
    """
    timeline: Sequence[tuple[float, object]] = getattr(spec, "timeline", ())
    truths = [
        i + 1
        for i, (_, event) in enumerate(timeline)
        if getattr(event, "kind", None) == "congestion_onset"
    ]
    return tuple(truths)


def detections_from_trace(
    events: Iterable[Mapping[str, object]],
) -> list[tuple[int, int]]:
    """``(cp_epoch, alarm_epoch)`` pairs from ``changepoint`` trace events."""
    out: list[tuple[int, int]] = []
    for event in events:
        if event.get("kind") != "changepoint":
            continue
        cp_epoch = event.get("cp_epoch")
        alarm_epoch = event.get("epoch")
        if isinstance(cp_epoch, int) and isinstance(alarm_epoch, int):
            out.append((cp_epoch, alarm_epoch))
    return out


def score_changepoints(
    detections: Sequence[tuple[int, int]],
    truths: Sequence[int],
    *,
    window: int = 4,
    slack: int = 1,
) -> ChangepointScore:
    """Windowed precision/recall/delay of ``detections`` vs ``truths``."""
    if window < 0:
        raise ValueError("window must be >= 0")
    if slack < 0:
        raise ValueError("slack must be >= 0")
    true_positives = 0
    for cp_epoch, _ in detections:
        if any(t - slack <= cp_epoch <= t + window for t in truths):
            true_positives += 1
    false_positives = len(detections) - true_positives

    missed: list[int] = []
    delays: list[int] = []
    for t in truths:
        matching = [
            alarm_epoch
            for cp_epoch, alarm_epoch in detections
            if t - slack <= cp_epoch <= t + window
        ]
        if matching:
            delays.append(min(matching) - t)
        else:
            missed.append(t)

    precision = 1.0 if not detections else true_positives / len(detections)
    recall = 1.0 if not truths else (len(truths) - len(missed)) / len(truths)
    mean_delay = sum(delays) / len(delays) if delays else 0.0
    return ChangepointScore(
        precision=precision,
        recall=recall,
        true_positives=true_positives,
        false_positives=false_positives,
        detected_truths=len(truths) - len(missed),
        missed_truths=tuple(missed),
        mean_delay_epochs=mean_delay,
    )
