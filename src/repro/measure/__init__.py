"""Measurement-driven observability: RTT series, changepoints, pathwatch.

The ``repro.measure`` package closes the observe->detect->deflect loop
over the telemetry layer:

* :mod:`repro.measure.rtt` — a deterministic per-path RTT observable
  derived from link propagation delay plus queueing occupancy, with a
  seeded noise model (pure function of ``(seed, flow, epoch)``).
* :mod:`repro.measure.changepoint` — a pure-python online PELT-style
  changepoint detector over scalar series (no RNG anywhere).
* :mod:`repro.measure.eval` — windowed precision/recall/delay scoring
  of detected changepoints against planted ground truth.
* :mod:`repro.measure.pathwatch` — forwarding-pattern analysis over a
  JSONL trace log, reporting observed per-flow path churn against the
  ground-truth scenario events.

The scenario engine samples RTT per active path each epoch when its
``detector`` config selects ``"threshold"`` or ``"changepoint"``, and
deflects flows on detected upward regime shifts instead of the oracle
congestion bits.  The fluid simulator can emit the same ``rtt_sample``
trace events via ``FluidSimConfig.rtt_sampling``.
"""

from __future__ import annotations

from .changepoint import CpAlarm, DetectorConfig, OnlineDetector, pelt
from .eval import ChangepointScore, detections_from_trace, planted_changepoints, score_changepoints
from .pathwatch import PathWatchReport, watch_paths
from .rtt import PathRttMonitor, RttAlarm, RttModel, RttModelConfig, RttSample

__all__ = [
    "ChangepointScore",
    "CpAlarm",
    "DetectorConfig",
    "OnlineDetector",
    "PathRttMonitor",
    "PathWatchReport",
    "RttAlarm",
    "RttModel",
    "RttModelConfig",
    "RttSample",
    "detections_from_trace",
    "pelt",
    "planted_changepoints",
    "score_changepoints",
    "watch_paths",
]
