"""Deterministic per-path RTT observable with seeded noise.

The model composes three terms per directed link: a fixed propagation
delay drawn once per AS pair from ``default_rng((seed, salt, lo, hi))``
(symmetric, cached), an M/M/1-style queueing delay that grows with link
utilisation, and a per-``(flow, epoch)`` Gaussian measurement noise
(a splitmix64-hashed Box-Muller draw — constructing a numpy Generator
per sample costs ~20us each and dominated the measurement loop).
A flow's RTT is twice the one-way sum over its path links plus noise —
the symmetric-path approximation: the reverse direction is assumed to
traverse the same links, which holds for the undirected capacity model
used by the scenario engine's max-min allocator.

Every term is a pure function of ``(seed, endpoints | flow, epoch)``,
so samples are bitwise identical across routing backends, across
incremental/full modes, and across checkpoint restore.  The online
detectors themselves (:mod:`repro.measure.changepoint`) contain no RNG
at all.

:class:`PathRttMonitor` is the stateful per-flow front end the scenario
engine drives once per epoch; its detector windows are serialised into
service checkpoints (see ``repro.service.checkpoint``).
"""

from __future__ import annotations

import dataclasses
import math
from typing import ClassVar, Iterable, NamedTuple, Sequence

import numpy as np

from ..errors import ConfigError
from .changepoint import DetectorConfig, OnlineDetector

__all__ = [
    "PathRttMonitor",
    "RttAlarm",
    "RttModel",
    "RttModelConfig",
    "RttSample",
]

#: rng stream salts keeping propagation and noise draws independent
_PROP_SALT = 715_517
_NOISE_SALT = 911_623

_MASK64 = (1 << 64) - 1


def _mix64(z: int) -> int:
    """One splitmix64 round (Steele, Lea & Flood 2014)."""
    z = (z + 0x9E3779B97F4A7C15) & _MASK64
    z = ((z ^ (z >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    z = ((z ^ (z >> 27)) * 0x94D049BB133111EB) & _MASK64
    return z ^ (z >> 31)


@dataclasses.dataclass(frozen=True)
class RttModelConfig:
    """Knobs of the synthetic RTT observable (all milliseconds).

    ``base_delay_ms`` +/- ``delay_jitter_ms`` bounds the per-link
    propagation draw; ``queue_delay_ms`` scales the M/M/1 queueing term
    ``u / (1 - u)`` whose utilisation argument is capped at
    ``util_knee`` to keep saturated links finite; ``noise_ms`` is the
    per-sample Gaussian measurement noise sigma.
    """

    base_delay_ms: float = 4.0
    delay_jitter_ms: float = 3.0
    queue_delay_ms: float = 1.5
    util_knee: float = 0.97
    noise_ms: float = 0.25

    def validate(self) -> None:
        """Raise :class:`~repro.errors.ConfigError` on bad knobs."""
        if self.base_delay_ms <= 0:
            raise ConfigError("base_delay_ms must be positive")
        if not 0 <= self.delay_jitter_ms < self.base_delay_ms:
            raise ConfigError("delay_jitter_ms must be in [0, base_delay_ms)")
        if self.queue_delay_ms < 0:
            raise ConfigError("queue_delay_ms must be >= 0")
        if not 0 < self.util_knee < 1:
            raise ConfigError("util_knee must be in (0, 1)")
        if self.noise_ms < 0:
            raise ConfigError("noise_ms must be >= 0")


class RttSample(NamedTuple):
    """One per-flow RTT observation (milliseconds).

    A named tuple rather than a frozen dataclass: the measurement loop
    builds one per flow per epoch and frozen-dataclass construction
    costs several times a tuple's.
    """

    flow_id: int
    rtt_ms: float


@dataclasses.dataclass(frozen=True)
class RttAlarm:
    """A confirmed RTT regime shift on one flow's path.

    ``epoch`` is when the alarm fired; ``cp_epoch`` the detector's
    estimate of when the shift actually happened (first post-shift
    sample); ``before_ms``/``after_ms`` the level either side.
    """

    flow_id: int
    epoch: int
    cp_epoch: int
    direction: str
    before_ms: float
    after_ms: float


class RttModel:
    """Pure-function RTT terms over ``(seed, link endpoints, utilisation)``."""

    def __init__(self, config: RttModelConfig | None = None, seed: int = 0) -> None:
        self.config = config if config is not None else RttModelConfig()
        self.config.validate()
        self.seed = int(seed)
        #: memo of the per-pair propagation draw (pure, rebuilt lazily)
        self._prop_cache: dict[tuple[int, int], float] = {}
        #: pre-mixed (seed, salt) prefix of the per-sample noise hash
        self._noise_key = _mix64(_mix64(self.seed & _MASK64) ^ _NOISE_SALT)

    def propagation_ms(self, u: int, v: int) -> float:
        """Fixed symmetric propagation delay of the ``(u, v)`` link."""
        lo, hi = (u, v) if u <= v else (v, u)
        got = self._prop_cache.get((lo, hi))
        if got is None:
            cfg = self.config
            r = float(np.random.default_rng((self.seed, _PROP_SALT, lo, hi)).random())
            got = max(0.1, cfg.base_delay_ms + cfg.delay_jitter_ms * (2.0 * r - 1.0))
            self._prop_cache[(lo, hi)] = got
        return got

    def queueing_ms(self, utilization: np.ndarray) -> np.ndarray:
        """Vectorised M/M/1 queueing delay for per-link utilisations."""
        u = np.clip(utilization, 0.0, self.config.util_knee)
        return np.asarray(self.config.queue_delay_ms * u / (1.0 - u))

    def link_delays_ms(
        self, links: Sequence[tuple[int, int]], utilization: np.ndarray
    ) -> np.ndarray:
        """One-way delay per link: propagation + queueing."""
        prop = np.fromiter(
            (self.propagation_ms(u, v) for u, v in links),
            dtype=np.float64,
            count=len(links),
        )
        return prop + self.queueing_ms(np.asarray(utilization, dtype=np.float64))

    def noise_ms(self, flow_id: int, epoch: int) -> float:
        """Per-``(flow, epoch)`` Gaussian measurement noise draw.

        Box-Muller over two splitmix64-keyed uniforms: the measurement
        loop takes one draw per flow per epoch, and a per-call numpy
        Generator would cost more than the rest of the sample combined.
        """
        sigma = self.config.noise_ms
        if sigma == 0:
            return 0.0
        # three inlined splitmix64 rounds (see _mix64) — one per key,
        # one to decorrelate the second uniform
        z = (self._noise_key ^ (flow_id & _MASK64)) + 0x9E3779B97F4A7C15 & _MASK64
        z = ((z ^ (z >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
        z = ((z ^ (z >> 27)) * 0x94D049BB133111EB) & _MASK64
        z = (z ^ (z >> 31) ^ (epoch & _MASK64)) + 0x9E3779B97F4A7C15 & _MASK64
        z = ((z ^ (z >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
        z = ((z ^ (z >> 27)) * 0x94D049BB133111EB) & _MASK64
        h = z ^ (z >> 31)
        z = (h + 0x9E3779B97F4A7C15) & _MASK64
        z = ((z ^ (z >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
        z = ((z ^ (z >> 27)) * 0x94D049BB133111EB) & _MASK64
        u1 = ((h >> 11) + 1) * 2.0**-53
        u2 = (((z ^ (z >> 31)) >> 11) + 1) * 2.0**-53
        return sigma * math.sqrt(-2.0 * math.log(u1)) * math.cos(2.0 * math.pi * u2)


class PathRttMonitor:
    """Per-flow RTT series with one online detector per flow.

    The scenario engine calls :meth:`observe_epoch` once per epoch with
    the active flows (id + path link indices), the interned link list
    and per-link utilisation; it gets back the epoch's samples and any
    confirmed alarms.  Detector windows are checkpointed state — the
    service layer serialises ``_rtt_series`` rows and the counters so
    restore-then-replay alarms bitwise-identically.
    """

    #: justified non-checkpointed attrs for the MC101 completeness pass
    DERIVABLE: ClassVar[dict[str, str]] = {
        "model": (
            "rebuilt from the rtt model config + engine seed at construction; "
            "the propagation cache is a pure function of (seed, endpoints) "
            "refilled lazily by observe_epoch"
        ),
    }

    def __init__(
        self,
        seed: int,
        config: DetectorConfig | None = None,
        model: RttModelConfig | None = None,
    ) -> None:
        self.config = config if config is not None else DetectorConfig()
        self.config.validate()
        self.model = RttModel(model, seed)
        #: per-flow detector state — checkpointed, keyed by flow id
        self._rtt_series: dict[int, OnlineDetector] = {}
        self._rtt_samples_total = 0
        self._rtt_alarms_total = 0

    @property
    def samples_total(self) -> int:
        """Total RTT samples taken over the monitor lifetime."""
        return self._rtt_samples_total

    @property
    def alarms_total(self) -> int:
        """Total confirmed alarms raised over the monitor lifetime."""
        return self._rtt_alarms_total

    @property
    def series_count(self) -> int:
        """Number of live per-flow series."""
        return len(self._rtt_series)

    def new_detector(self) -> OnlineDetector:
        """A fresh detector with this monitor's config (restore hook)."""
        return OnlineDetector(self.config)

    def observe_epoch(
        self,
        epoch: int,
        flows: Iterable[tuple[int, Sequence[int]]],
        links: Sequence[tuple[int, int]],
        utilization: np.ndarray,
    ) -> tuple[list[RttSample], list[RttAlarm]]:
        """Sample every flow's path RTT and push into its detector."""
        delays = self.model.link_delays_ms(links, utilization).tolist()
        noise = self.model.noise_ms
        series = self._rtt_series
        samples: list[RttSample] = []
        alarms: list[RttAlarm] = []
        for flow_id, link_ids in flows:
            one_way = 0.0
            for i in link_ids:
                one_way += delays[i]
            rtt = max(0.05, 2.0 * one_way + noise(flow_id, epoch))
            samples.append(RttSample(flow_id, rtt))
            detector = series.get(flow_id)
            if detector is None:
                detector = OnlineDetector(self.config)
                series[flow_id] = detector
            alarm = detector.push(rtt, epoch)
            if alarm is not None:
                alarms.append(
                    RttAlarm(
                        flow_id=flow_id,
                        epoch=epoch,
                        cp_epoch=alarm.epoch,
                        direction=alarm.direction,
                        before_ms=alarm.before,
                        after_ms=alarm.after,
                    )
                )
        self._rtt_samples_total += len(samples)
        self._rtt_alarms_total += len(alarms)
        return samples, alarms

    def drop_flow(self, flow_id: int) -> None:
        """Forget a retired flow's series (bounded-memory contract)."""
        self._rtt_series.pop(flow_id, None)
