"""The unified session API fronting the streaming service.

:class:`ServiceSession` owns one long-lived
:class:`~repro.scenario.engine.ScenarioEngine` and advances it through
the unbounded event stream one :class:`~repro.service.stream.ServiceTick`
at a time:

* :meth:`step` — pull the next event (fed events first, then the
  generated stream), retire flows whose lifetime expired, and run the
  engine's full eight-step per-event procedure;
* :meth:`feed` — enqueue an externally supplied event ahead of the
  generated stream (operator interventions, replayed traces);
* :meth:`drain` — step ``n`` times and summarize;
* :meth:`checkpoint` / :meth:`restore` — serialize / reconstruct the
  complete service state (see :mod:`repro.service.checkpoint`); a
  restored session replays **byte-identically** to one that never
  stopped;
* :meth:`snapshot` — live telemetry/gauge export for monitoring;
* :meth:`result` — package the retained window as the standard
  :class:`~repro.experiments.result.ExperimentResult` envelope.

Memory stays bounded no matter how long the stream runs: retired flows
leave the population and the solver, per-event records live in a ring
(``ServiceConfig.record_capacity``), and the telemetry trace ring is
bounded by construction.
"""

from __future__ import annotations

import dataclasses
import heapq
from collections import deque
from typing import TYPE_CHECKING, Any

from .. import telemetry as tm
from ..errors import ConfigError
from ..scenario.engine import EventRecord, ScenarioEngine
from ..scenario.events import ScenarioSpec
from ..telemetry import Telemetry
from ..topology.generator import TopologyConfig, generate_topology
from .config import ServiceConfig
from .stream import EventStream, FlowArrival, ServiceTick, StreamEvent

if TYPE_CHECKING:  # pragma: no cover - types only
    from ..experiments.result import ExperimentResult

__all__ = ["DrainReport", "ServiceSession"]

#: the empty timeline the service engine is constructed around — events
#: come from the stream, not a spec.
_SERVICE_SPEC = ScenarioSpec(
    "service", "unbounded event stream (repro.service)", ()
)


@dataclasses.dataclass(frozen=True)
class DrainReport:
    """Summary of one :meth:`ServiceSession.drain` batch."""

    events: int
    arrivals: int
    retired: int
    flows_live: int
    clock_s: float
    last_record: EventRecord | None


class ServiceSession:
    """A long-lived streaming MIFO routing service.

    ``telemetry`` accepts a :class:`~repro.telemetry.Telemetry` instance,
    ``True`` (construct a fresh one), or ``None`` (don't measure).  The
    session activates its registry only for the duration of each step,
    so concurrent sessions never cross-count.
    """

    def __init__(
        self,
        config: ServiceConfig | None = None,
        *,
        topology: TopologyConfig | None = None,
        backend: str = "dict",
        telemetry: Telemetry | bool | None = None,
        bootstrap: bool = True,
    ) -> None:
        self.config = config if config is not None else ServiceConfig()
        self.config.validate()
        self.topology = topology if topology is not None else TopologyConfig()
        self.backend = backend
        if telemetry is True:
            self.telemetry: Telemetry | None = Telemetry()
        elif telemetry is False or telemetry is None:
            self.telemetry = None
        else:
            self.telemetry = telemetry
        self._base_graph = generate_topology(self.topology)  # mifocheck: derivable: regenerated from the captured topology config
        self._stream = EventStream(self._base_graph, self.config)  # mifocheck: derivable: pure function of (base graph, config)
        self.engine = ScenarioEngine(
            self._base_graph,
            [],
            _SERVICE_SPEC,
            backend=backend,
            seed=self.config.seed,
            config=self.config.scenario_config(),
        )
        #: externally fed events, consumed before the generated stream.
        self._fed: deque[tuple[float, StreamEvent]] = deque()
        #: min-heap of (due_tick, flow_id) retirements.
        self._expiry: list[tuple[int, int]] = []
        self._stream_index = 0
        self._clock = 0.0
        self._tick = 0
        self.arrivals_total = 0
        self.retired_total = 0
        if bootstrap:
            # Epoch 0: the engine's initial-routing pass over the (empty)
            # base population.  A restored session skips this — its epoch
            # counter and records come from the checkpoint.
            self.engine.step(0.0, None)

    # ------------------------------------------------------------------
    # the event loop
    # ------------------------------------------------------------------
    def step(self) -> EventRecord:
        """Process one service tick and return its metrics record."""
        if self._fed:
            dt, event = self._fed.popleft()
        else:
            dt, event = self._stream.event_at(self._stream_index)
            self._stream_index += 1
        self._clock += dt
        t = self._tick
        due: list[int] = []
        while self._expiry and self._expiry[0][0] <= t:
            due.append(heapq.heappop(self._expiry)[1])
        arrival_id = (
            self.engine.next_flow_id if isinstance(event, FlowArrival) else None
        )
        tick = ServiceTick(retire=tuple(due), event=event)
        verify = (
            self.config.verify_every > 0
            and (t + 1) % self.config.verify_every == 0
        )
        prev = tm.active()
        if self.telemetry is not None:
            tm.activate(self.telemetry)
        try:
            self.engine.step(self._clock, tick, verify=verify)
        finally:
            if self.telemetry is not None:
                tm.activate(prev)
        self._tick = t + 1
        if arrival_id is not None and isinstance(event, FlowArrival):
            heapq.heappush(self._expiry, (t + event.lifetime, arrival_id))
            self.arrivals_total += 1
        self.retired_total += len(due)
        return self.engine.records[-1]

    def feed(self, event: StreamEvent, *, dt: float = 0.0) -> None:
        """Enqueue an external event ahead of the generated stream.

        ``dt`` is the virtual-clock gap the event carries (default: it
        happens "immediately", advancing the clock by nothing).  Fed
        events are part of the checkpointed state, so kill-and-restore
        around them stays exact.
        """
        if dt < 0.0:
            raise ConfigError("fed event dt must be >= 0")
        self._fed.append((float(dt), event))

    def drain(self, n: int) -> DrainReport:
        """Step ``n`` times; return a summary of the batch."""
        if n < 0:
            raise ConfigError("drain count must be >= 0")
        arrivals0, retired0 = self.arrivals_total, self.retired_total
        last: EventRecord | None = None
        for _ in range(n):
            last = self.step()
        return DrainReport(
            events=n,
            arrivals=self.arrivals_total - arrivals0,
            retired=self.retired_total - retired0,
            flows_live=self.engine.n_flows,
            clock_s=self._clock,
            last_record=last,
        )

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def events_processed(self) -> int:
        """Service ticks completed (the epoch-0 bootstrap excluded)."""
        return self._tick

    @property
    def clock_s(self) -> float:
        """The virtual Poisson clock (seconds of simulated stream time)."""
        return self._clock

    def snapshot(self) -> dict[str, Any]:
        """Live state export for monitoring: gauges + telemetry counters."""
        records = self.engine.records
        last = records[-1] if records else None
        return {
            "events": self._tick,
            "clock_s": self._clock,
            "flows_live": self.engine.n_flows,
            "arrivals_total": self.arrivals_total,
            "retired_total": self.retired_total,
            "failed_links": len(self.engine.failed_links),
            "congested_links": last.congested_links if last else 0,
            "flows_unroutable": last.flows_unroutable if last else 0,
            "total_throughput_gbps": (
                last.total_throughput_gbps if last else 0.0
            ),
            "telemetry": (
                self.telemetry.snapshot().to_dict()
                if self.telemetry is not None
                else None
            ),
        }

    def result(self, *, scale: str = "stream") -> "ExperimentResult":
        """The retained record window as the unified result envelope.

        The payload (series + non-provenance meta) is a pure function of
        simulation state, so a restored session's ``result()`` is
        byte-identical to an uninterrupted one's — the checkpoint test's
        oracle.
        """
        from ..experiments.result import ExperimentResult, freeze_series

        records = list(self.engine.records)
        series = {
            "dirty destinations": [
                (r.time_s, float(r.dirty_dests)) for r in records
            ],
            "flows rerouted": [
                (r.time_s, float(r.flows_rerouted)) for r in records
            ],
            "live flows": [(r.time_s, float(r.flows_total)) for r in records],
            "congested links": [
                (r.time_s, float(r.congested_links)) for r in records
            ],
            "deflected flows": [
                (r.time_s, float(r.deflected_flows)) for r in records
            ],
            "mean rate (Mbps)": [(r.time_s, r.mean_rate_mbps) for r in records],
            "total throughput (Gbps)": [
                (r.time_s, r.total_throughput_gbps) for r in records
            ],
        }
        last = records[-1] if records else None
        meta: dict[str, Any] = {
            "backend": self.engine.routing.backend,
            "workers": 1,
            "routing_cache": {
                "cached_destinations": len(
                    self.engine.routing.cached_destinations()
                )
            },
            "scenario_engine": {
                "mode": self.config.mode,
                "dests_recomputed": self.engine.routing.dests_recomputed,
                "dests_rebased": self.engine.routing.dests_rebased,
                "warm_solves": self.engine.solver.solves,
                "warm_hits": self.engine.solver.hits,
            },
            "events": self._tick,
            "arrivals": self.arrivals_total,
            "retired": self.retired_total,
            "flows_live": self.engine.n_flows,
            "final_unroutable": last.flows_unroutable if last else 0,
            "clock_s": self._clock,
            "stream_index": self._stream_index,
        }
        return ExperimentResult(
            name="service",
            scale=scale,
            series=freeze_series(series),
            meta=meta,
            raw=self,
        )

    # ------------------------------------------------------------------
    # checkpoint / restore
    # ------------------------------------------------------------------
    def checkpoint(self) -> dict[str, Any]:
        """The complete service state as a JSON-safe dict."""
        from .checkpoint import capture

        return capture(self)

    def checkpoint_json(self) -> str:
        """Deterministic JSON bytes of :meth:`checkpoint`."""
        from .checkpoint import to_json

        return to_json(self.checkpoint())

    def save_checkpoint(self, path: str) -> None:
        """Write :meth:`checkpoint_json` to ``path``."""
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(self.checkpoint_json())

    @classmethod
    def restore(
        cls,
        source: "dict[str, Any] | str",
        *,
        backend: str | None = None,
        telemetry: Telemetry | bool | None = None,
    ) -> "ServiceSession":
        """Reconstruct a session from a checkpoint dict or file path.

        ``backend`` overrides the checkpointed routing backend (replay is
        byte-identical either way — the cross-backend contract).  When
        ``telemetry`` is unspecified and the checkpoint carries counters,
        a fresh registry is created and the counters re-applied.
        """
        from .checkpoint import restore

        return restore(source, backend=backend, telemetry=telemetry)
