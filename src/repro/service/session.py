"""The unified session API fronting the streaming service.

:class:`ServiceSession` owns one long-lived
:class:`~repro.scenario.engine.ScenarioEngine` and advances it through
the unbounded event stream one :class:`~repro.service.stream.ServiceTick`
at a time:

* :meth:`step` — pull the next event (fed events first, then the
  generated stream), retire flows whose lifetime expired, and run the
  engine's full eight-step per-event procedure;
* :meth:`feed` — enqueue an externally supplied event ahead of the
  generated stream (operator interventions, replayed traces);
* :meth:`drain` — step ``n`` times and summarize;
* :meth:`checkpoint` / :meth:`restore` — serialize / reconstruct the
  complete service state (see :mod:`repro.service.checkpoint`); a
  restored session replays **byte-identically** to one that never
  stopped;
* :meth:`snapshot` — live telemetry/gauge export for monitoring;
* :meth:`result` — package the retained window as the standard
  :class:`~repro.experiments.result.ExperimentResult` envelope.

**Batching** (``ServiceConfig.batch_max > 1``): consecutive
arrival/retirement ticks buffer instead of stepping the engine, and the
whole run applies as one :class:`~repro.service.stream.BatchTick` —
one route pass, one delta-solve, one congestion response per flush
instead of one per event.  The flush schedule is a pure function of the
event sequence (buffer full, or a barrier: flap, jitter, fed event,
verify-cadence tick) — never of observation points — so checkpoints
taken mid-batch serialize the pending ticks verbatim and restore
replays byte-identically.  See ``docs/scaling.md`` for the semantics.

**Parallel re-convergence**: :meth:`attach_routing_engine` wires a
:class:`~repro.bgp.parallel.ParallelRoutingEngine` into the flap hot
path — dirty destination sets re-converge sharded over the worker pool
instead of serially.  Call :meth:`close` (or use the session as a
context manager) to release the pool and its shared-memory segment.

Memory stays bounded no matter how long the stream runs: retired flows
leave the population and the solver, per-event records live in a ring
(``ServiceConfig.record_capacity``), and the telemetry trace ring is
bounded by construction.
"""

from __future__ import annotations

import dataclasses
import heapq
from collections import deque
from typing import TYPE_CHECKING, Any

from .. import telemetry as tm
from ..errors import ConfigError
from ..scenario.engine import EventRecord, ScenarioEngine
from ..scenario.events import ScenarioSpec
from ..telemetry import Stopwatch, Telemetry
from ..topology.generator import TopologyConfig, generate_topology
from .config import ServiceConfig
from .stream import BatchTick, EventStream, FlowArrival, ServiceTick, StreamEvent

if TYPE_CHECKING:  # pragma: no cover - types only
    from ..bgp.parallel import ParallelRoutingEngine
    from ..experiments.result import ExperimentResult

__all__ = ["DrainReport", "ServiceSession"]

#: the empty timeline the service engine is constructed around — events
#: come from the stream, not a spec.
_SERVICE_SPEC = ScenarioSpec(
    "service", "unbounded event stream (repro.service)", ()
)


@dataclasses.dataclass(frozen=True)
class DrainReport:
    """Summary of one :meth:`ServiceSession.drain` batch."""

    events: int
    arrivals: int
    retired: int
    flows_live: int
    clock_s: float
    last_record: EventRecord | None


class ServiceSession:
    """A long-lived streaming MIFO routing service.

    ``telemetry`` accepts a :class:`~repro.telemetry.Telemetry` instance,
    ``True`` (construct a fresh one), or ``None`` (don't measure).  The
    session activates its registry only for the duration of each step,
    so concurrent sessions never cross-count.
    """

    def __init__(
        self,
        config: ServiceConfig | None = None,
        *,
        topology: TopologyConfig | None = None,
        backend: str = "dict",
        telemetry: Telemetry | bool | None = None,
        bootstrap: bool = True,
    ) -> None:
        self.config = config if config is not None else ServiceConfig()
        self.config.validate()
        self.topology = topology if topology is not None else TopologyConfig()
        self.backend = backend
        if telemetry is True:
            self.telemetry: Telemetry | None = Telemetry()
        elif telemetry is False or telemetry is None:
            self.telemetry = None
        else:
            self.telemetry = telemetry
        self._base_graph = generate_topology(self.topology)  # mifocheck: derivable: regenerated from the captured topology config
        self._stream = EventStream(self._base_graph, self.config)  # mifocheck: derivable: pure function of (base graph, config)
        self.engine = ScenarioEngine(
            self._base_graph,
            [],
            _SERVICE_SPEC,
            backend=backend,
            seed=self.config.seed,
            config=self.config.scenario_config(),
        )
        #: externally fed events, consumed before the generated stream.
        self._fed: deque[tuple[float, StreamEvent]] = deque()
        #: min-heap of (due_tick, flow_id) retirements.
        self._expiry: list[tuple[int, int]] = []
        #: buffered non-barrier ticks awaiting the next flush (batching).
        self._pending: list[ServiceTick] = []
        self._stream_index = 0
        self._clock = 0.0
        self._tick = 0
        self.arrivals_total = 0
        self.retired_total = 0
        self._routing_engine: "ParallelRoutingEngine | None" = None  # mifocheck: derivable: runtime worker-pool resource, re-attached via attach_routing_engine
        if bootstrap:
            # Epoch 0: the engine's initial-routing pass over the (empty)
            # base population.  A restored session skips this — its epoch
            # counter and records come from the checkpoint.
            self.engine.step(0.0, None)

    # ------------------------------------------------------------------
    # the event loop
    # ------------------------------------------------------------------
    def step(self) -> EventRecord:
        """Process one service tick and return the newest metrics record.

        With ``batch_max > 1`` a non-barrier tick may only be *buffered*;
        the returned record is then the one from the last flush.  The
        flush schedule depends only on the event sequence (never on when
        the caller observes the session), which is what keeps
        checkpoint/restore and drain-chunking byte-identical.
        """
        fed = bool(self._fed)
        if fed:
            dt, event = self._fed.popleft()
        else:
            dt, event = self._stream.event_at(self._stream_index)
            self._stream_index += 1
        self._clock += dt
        t = self._tick
        due: list[int] = []
        while self._expiry and self._expiry[0][0] <= t:
            due.append(heapq.heappop(self._expiry)[1])
        arrival_id: int | None = None
        if isinstance(event, FlowArrival):
            # Buffered arrivals haven't registered yet, so the id this
            # event will receive is offset by the arrivals ahead of it.
            arrival_id = self.engine.next_flow_id + sum(
                1 for tk in self._pending if isinstance(tk.event, FlowArrival)
            )
        tick = ServiceTick(retire=tuple(due), event=event)
        verify = (
            self.config.verify_every > 0
            and (t + 1) % self.config.verify_every == 0
        )
        # Barrier events must see (and produce) exact per-event state:
        # topology/capacity changes resolve symbolically against the live
        # engine, fed events are operator interventions, and a verify
        # tick certifies a single-event epoch.
        barrier = fed or verify or not (
            event is None or isinstance(event, FlowArrival)
        )
        self._tick = t + 1
        if arrival_id is not None and isinstance(event, FlowArrival):
            heapq.heappush(self._expiry, (t + event.lifetime, arrival_id))
            self.arrivals_total += 1
        self.retired_total += len(due)
        if self.config.batch_max <= 1 or barrier:
            if self._pending:
                self._flush()
            self._apply((tick,), verify=verify, batched=False)
        else:
            self._pending.append(tick)
            if len(self._pending) >= self.config.batch_max:
                self._flush()
        return self.engine.records[-1]

    def _flush(self) -> None:
        """Apply the buffered batch as one engine epoch."""
        pending, self._pending = self._pending, []
        self._apply(tuple(pending), verify=False, batched=True)

    def _apply(
        self,
        ticks: tuple[ServiceTick, ...],
        *,
        verify: bool,
        batched: bool,
    ) -> None:
        """One engine epoch over ``ticks`` (one tick, or a whole batch)."""
        event = ticks[0] if len(ticks) == 1 else BatchTick(ticks=ticks)
        prev = tm.active()
        if self.telemetry is not None:
            tm.activate(self.telemetry)
        try:
            self.engine.step(self._clock, event, verify=verify)
            if batched:
                tm.inc("service.batched_events", len(ticks))
                tm.inc("service.batch_solves")
                tm.event(
                    "batch_flush",
                    epoch=self.engine.epoch,
                    batched=len(ticks),
                    time_s=self._clock,
                )
        finally:
            if self.telemetry is not None:
                tm.activate(prev)

    def feed(self, event: StreamEvent, *, dt: float = 0.0) -> None:
        """Enqueue an external event ahead of the generated stream.

        ``dt`` is the virtual-clock gap the event carries (default: it
        happens "immediately", advancing the clock by nothing).  Fed
        events are part of the checkpointed state, so kill-and-restore
        around them stays exact.
        """
        if dt < 0.0:
            raise ConfigError("fed event dt must be >= 0")
        self._fed.append((float(dt), event))

    def drain(self, n: int) -> DrainReport:
        """Step ``n`` times; return a summary of the batch.

        Draining never flushes a pending batch by itself — the flush
        schedule belongs to the event sequence, so two sessions draining
        the same stream in different chunk sizes stay byte-identical.
        As a side effect the ``service.events_per_sec`` gauge is updated
        (wall-clock throughput; gauges are monitoring-only and never
        checkpointed, so determinism is untouched).
        """
        if n < 0:
            raise ConfigError("drain count must be >= 0")
        arrivals0, retired0 = self.arrivals_total, self.retired_total
        last: EventRecord | None = None
        watch = Stopwatch()
        for _ in range(n):
            last = self.step()
        if self.telemetry is not None and n > 0 and watch.elapsed > 0:
            self.telemetry.set_gauge(
                "service.events_per_sec", n / watch.elapsed
            )
        return DrainReport(
            events=n,
            arrivals=self.arrivals_total - arrivals0,
            retired=self.retired_total - retired0,
            flows_live=self.engine.n_flows,
            clock_s=self._clock,
            last_record=last,
        )

    # ------------------------------------------------------------------
    # parallel re-convergence + lifecycle
    # ------------------------------------------------------------------
    def attach_routing_engine(
        self, engine: "ParallelRoutingEngine | None", *, shard_min: int = 16
    ) -> None:
        """Wire a :class:`~repro.bgp.parallel.ParallelRoutingEngine` into
        the flap hot path (or detach with ``None``).

        Dirty destination sets of at least ``shard_min`` entries then
        re-converge sharded over the pool instead of serially (array
        backend only; the serial path remains the fallback ladder).  The
        session owns the engine from here: :meth:`close` releases it.
        """
        self._routing_engine = engine
        self.engine.routing.attach_engine(engine, shard_min=shard_min)

    @property
    def routing_engine(self) -> "ParallelRoutingEngine | None":
        """The attached parallel routing engine, if any."""
        return self._routing_engine

    def close(self) -> None:
        """Release the attached routing engine's pool and shared memory.

        Idempotent; a no-op for sessions that never attached one.  The
        session itself stays usable (flap re-convergence falls back to
        the serial path).
        """
        engine, self._routing_engine = self._routing_engine, None
        if engine is not None:
            self.engine.routing.attach_engine(None)
            engine.close()

    def __enter__(self) -> "ServiceSession":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def events_processed(self) -> int:
        """Service ticks completed (the epoch-0 bootstrap excluded)."""
        return self._tick

    @property
    def clock_s(self) -> float:
        """The virtual Poisson clock (seconds of simulated stream time)."""
        return self._clock

    def snapshot(self) -> dict[str, Any]:
        """Live state export for monitoring: gauges + telemetry counters."""
        records = self.engine.records
        last = records[-1] if records else None
        return {
            "events": self._tick,
            "clock_s": self._clock,
            "pending_batch": len(self._pending),
            "flows_live": self.engine.n_flows,
            "arrivals_total": self.arrivals_total,
            "retired_total": self.retired_total,
            "failed_links": len(self.engine.failed_links),
            "congested_links": last.congested_links if last else 0,
            "flows_unroutable": last.flows_unroutable if last else 0,
            "total_throughput_gbps": (
                last.total_throughput_gbps if last else 0.0
            ),
            "telemetry": (
                self.telemetry.snapshot().to_dict()
                if self.telemetry is not None
                else None
            ),
        }

    def result(self, *, scale: str = "stream") -> "ExperimentResult":
        """The retained record window as the unified result envelope.

        The payload (series + non-provenance meta) is a pure function of
        simulation state, so a restored session's ``result()`` is
        byte-identical to an uninterrupted one's — the checkpoint test's
        oracle.
        """
        from ..experiments.result import ExperimentResult, freeze_series

        records = list(self.engine.records)
        series = {
            "dirty destinations": [
                (r.time_s, float(r.dirty_dests)) for r in records
            ],
            "flows rerouted": [
                (r.time_s, float(r.flows_rerouted)) for r in records
            ],
            "live flows": [(r.time_s, float(r.flows_total)) for r in records],
            "congested links": [
                (r.time_s, float(r.congested_links)) for r in records
            ],
            "deflected flows": [
                (r.time_s, float(r.deflected_flows)) for r in records
            ],
            "mean rate (Mbps)": [(r.time_s, r.mean_rate_mbps) for r in records],
            "total throughput (Gbps)": [
                (r.time_s, r.total_throughput_gbps) for r in records
            ],
        }
        last = records[-1] if records else None
        meta: dict[str, Any] = {
            "backend": self.engine.routing.backend,
            "workers": (
                self._routing_engine.effective_workers
                if self._routing_engine is not None
                else 1
            ),
            "routing_cache": {
                "cached_destinations": len(
                    self.engine.routing.cached_destinations()
                )
            },
            "scenario_engine": {
                "mode": self.config.mode,
                "dests_recomputed": self.engine.routing.dests_recomputed,
                "dests_rebased": self.engine.routing.dests_rebased,
                "warm_solves": self.engine.solver.solves,
                "warm_hits": self.engine.solver.hits,
            },
            "events": self._tick,
            "arrivals": self.arrivals_total,
            "retired": self.retired_total,
            "flows_live": self.engine.n_flows,
            "final_unroutable": last.flows_unroutable if last else 0,
            "clock_s": self._clock,
            "stream_index": self._stream_index,
        }
        return ExperimentResult(
            name="service",
            scale=scale,
            series=freeze_series(series),
            meta=meta,
            raw=self,
        )

    # ------------------------------------------------------------------
    # checkpoint / restore
    # ------------------------------------------------------------------
    def checkpoint(self) -> dict[str, Any]:
        """The complete service state as a JSON-safe dict."""
        from .checkpoint import capture

        return capture(self)

    def checkpoint_json(self) -> str:
        """Deterministic JSON bytes of :meth:`checkpoint`."""
        from .checkpoint import to_json

        return to_json(self.checkpoint())

    def save_checkpoint(self, path: str) -> None:
        """Write :meth:`checkpoint_json` to ``path``."""
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(self.checkpoint_json())

    @classmethod
    def restore(
        cls,
        source: "dict[str, Any] | str",
        *,
        backend: str | None = None,
        telemetry: Telemetry | bool | None = None,
    ) -> "ServiceSession":
        """Reconstruct a session from a checkpoint dict or file path.

        ``backend`` overrides the checkpointed routing backend (replay is
        byte-identical either way — the cross-backend contract).  When
        ``telemetry`` is unspecified and the checkpoint carries counters,
        a fresh registry is created and the counters re-applied.
        """
        from .checkpoint import restore

        return restore(source, backend=backend, telemetry=telemetry)
