"""Streaming service mode: a long-lived MIFO routing process.

The batch experiments answer "what does MIFO do to this workload?"; this
package answers "can MIFO *run* — indefinitely, restartably, under an
unbounded interleaved stream of flow arrivals/departures and link
events?"  :class:`ServiceSession` is the unified front door:

>>> from repro.service import ServiceConfig, ServiceSession
>>> from repro.topology import TopologyConfig
>>> s = ServiceSession(ServiceConfig(seed=7), topology=TopologyConfig(n_ases=120))
>>> report = s.drain(200)          # 200 stream events
>>> blob = s.checkpoint_json()     # deterministic bytes
>>> s2 = ServiceSession.restore({"..." : "..."})  # doctest: +SKIP

Checkpoint → restore → replay is byte-identical to never having stopped
(``tests/service/test_checkpoint.py`` proves it at hypothesis-chosen
kill points, across routing backends).
"""

from .config import ServiceConfig
from .session import DrainReport, ServiceSession
from .stream import (
    BatchTick,
    CapacityJitter,
    EventStream,
    FlowArrival,
    LinkFlap,
    ServiceTick,
    StreamEvent,
)

__all__ = [
    "BatchTick",
    "CapacityJitter",
    "DrainReport",
    "EventStream",
    "FlowArrival",
    "LinkFlap",
    "ServiceConfig",
    "ServiceSession",
    "ServiceTick",
    "StreamEvent",
]
