"""Deterministic checkpoint / restore of a running service session.

Design rule: **serialize only what cannot be re-derived, re-derive the
rest.**  The checkpoint stores configs, the failed-link stack, the flow
table, the dense data-plane arrays, the record ring, counters, the
stream cursor, and any batch ticks still buffered between flushes — all
JSON scalars (Python floats round-trip exactly through ``repr``, so
JSON is lossless here).  It does *not* store routing views, solver
slabs, or RNG internals:

* the topology regenerates from its config and the failed stack replays
  over it (same frozen-graph derivative chain as live operation);
* routing views recompute per cached destination — sound because
  ``IncrementalRouting.crosscheck`` proves live views always equal a
  fresh recompute;
* the pooled max-min solver rebuilds by re-adding the flow table and
  running one priming fill — bitwise-safe because fill results are
  independent of column numbering (the warm-start crosscheck asserts
  exactly this against a fresh cold build); the only pool state that is
  *not* derivable from the live flows is the free-list occupancy (dead
  columns waiting to be recycled), so that small map is checkpointed and
  re-seeded to keep ``flowsim.cols_reused`` identical under replay;
* stream event ``i`` is a pure function of ``(seed, i)``, so the cursor
  *is* the generator state.

Rebuild work runs with telemetry deactivated, then the checkpointed
counter values are re-applied — so restored telemetry counters match an
uninterrupted run's exactly.  ``to_json`` emits sorted-key JSON: one
state, one byte sequence.
"""

from __future__ import annotations

import dataclasses
import heapq
import json
from collections import deque
from typing import Any

import numpy as np

from .. import telemetry as tm
from ..errors import ConfigError
from ..scenario.engine import EventRecord, _SimFlow
from ..scenario.incremental import IncrementalRouting
from ..telemetry import Telemetry
from ..topology.dynamics import without_link
from ..topology.relationships import Relationship
from .stream import STREAM_EVENT_TYPES, ServiceTick, StreamEvent

__all__ = ["CHECKPOINT_FORMAT", "CHECKPOINT_VERSION", "capture", "restore", "to_json"]

CHECKPOINT_FORMAT = "mifo-service-checkpoint"
#: version 2 added the engine's ``rtt`` section (per-flow RTT detector
#: windows + monitor counters); version 3 added the session's
#: ``pending`` section (buffered batch ticks, so a kill landing
#: mid-batch restores and replays byte-identically).  Version-1
#: documents (no measurement state, implying the oracle detector) and
#: version-2 documents (no pending buffer, implying ``batch_max=1``
#: behavior or an empty buffer) still restore.
CHECKPOINT_VERSION = 3
_READABLE_VERSIONS = (1, 2, 3)


def capture(session: Any) -> dict[str, Any]:
    """Serialize a :class:`~repro.service.session.ServiceSession`.

    Must be called between steps (the session API cannot observe a
    mid-step state, so this holds by construction for API users).
    """
    eng = session.engine
    n = len(eng._link_idx)
    flows = [
        [
            f.flow_id,
            f.src,
            f.dst,
            list(f.path) if f.path is not None else None,
            bool(f.on_alt),
            f.switches,
            float(f.rate),
        ]
        for f in eng._flows.values()
    ]
    telemetry_state: dict[str, Any] | None = None
    if session.telemetry is not None:
        telemetry_state = {
            "counters": dict(sorted(session.telemetry.counters.items()))
        }
    # Measurement state: per-flow detector windows are genuine state (a
    # detector is a pure function of its pushed series, but the series
    # itself cannot be re-derived), so they serialize in full.
    rtt_state: dict[str, Any] | None = None
    mon = eng._rtt
    if mon is not None:
        rtt_state = {
            "samples_total": mon._rtt_samples_total,
            "alarms_total": mon._rtt_alarms_total,
            "series": [
                [
                    fid,
                    det._cp_base,
                    det._cp_count,
                    det._cp_last,
                    det._cp_streak,
                    det._cp_baseline,
                    [float(x) for x in det._cp_values],
                    [int(x) for x in det._cp_epochs],
                ]
                for fid, det in mon._rtt_series.items()
            ],
        }
    from ..config import config_to_dict

    return {
        "format": CHECKPOINT_FORMAT,
        "version": CHECKPOINT_VERSION,
        "config": config_to_dict(session.config),
        "topology": config_to_dict(session.topology),
        "backend": eng.routing.backend,
        "session": {
            "tick": session._tick,
            "clock_s": float(session._clock),
            "stream_index": session._stream_index,
            "arrivals_total": session.arrivals_total,
            "retired_total": session.retired_total,
            "expiry": [list(entry) for entry in sorted(session._expiry)],
            "fed": [
                [float(dt), ev.kind, dataclasses.asdict(ev)]
                for dt, ev in session._fed
            ],
            # Buffered batch ticks (in arrival order): genuine state — the
            # events were consumed from the stream but not yet applied, so
            # a mid-batch kill must carry them verbatim.
            "pending": [
                [
                    list(tk.retire),
                    tk.event.kind if tk.event is not None else None,
                    dataclasses.asdict(tk.event) if tk.event is not None else None,
                ]
                for tk in session._pending
            ],
        },
        "engine": {
            "event_no": eng.epoch,
            "next_flow_id": eng.next_flow_id,
            "failed": [[u, v, rel.name] for u, v, rel in eng.failed_links],
            "links": [[int(u), int(v)] for u, v in eng._link_idx],
            "cap_factor": [float(x) for x in eng._cap_factor[:n]],
            "exo_frac": [float(x) for x in eng._exo_frac[:n]],
            "congested": [int(x) for x in eng._congested[:n]],
            "alloc": [float(x) for x in eng._alloc[:n]],
            "flows": flows,
            "records": [dataclasses.asdict(r) for r in eng.records],
            "routing_dests": sorted(eng.routing.cached_destinations()),
            "free_segments": {
                str(n): count
                for n, count in eng.solver.pool.free_segments().items()
            },
            "counters": {
                "dests_recomputed": eng.routing.dests_recomputed,
                "dests_rebased": eng.routing.dests_rebased,
                "solver_solves": eng.solver.solves,
                "solver_hits": eng.solver.hits,
                "pool": {
                    "pool_hits": eng.solver.pool.pool_hits,
                    "cols_reused": eng.solver.pool.cols_reused,
                    "warm_rounds_saved": eng.solver.pool.warm_rounds_saved,
                    "rounds_total": eng.solver.pool.rounds_total,
                    "solves": eng.solver.pool.solves,
                    "hits": eng.solver.pool.hits,
                },
            },
            "rtt": rtt_state,
        },
        "telemetry": telemetry_state,
    }


def to_json(state: dict[str, Any]) -> str:
    """Canonical checkpoint bytes: sorted keys, no whitespace games."""
    return json.dumps(state, sort_keys=True)


def _load(source: dict[str, Any] | str) -> dict[str, Any]:
    if isinstance(source, dict):
        state = source
    else:
        with open(source, encoding="utf-8") as fh:
            state = json.load(fh)
    if state.get("format") != CHECKPOINT_FORMAT:
        raise ConfigError(
            f"not a {CHECKPOINT_FORMAT} document: format="
            f"{state.get('format')!r}"
        )
    if state.get("version") not in _READABLE_VERSIONS:
        raise ConfigError(
            f"unsupported checkpoint version {state.get('version')!r} "
            f"(this build reads versions {_READABLE_VERSIONS})"
        )
    return state


def restore(
    source: dict[str, Any] | str,
    *,
    backend: str | None = None,
    telemetry: Telemetry | bool | None = None,
) -> Any:
    """Reconstruct a live session from a checkpoint dict or file path."""
    from ..config import config_from_dict
    from .config import ServiceConfig
    from .session import ServiceSession
    from ..topology.generator import TopologyConfig

    state = _load(source)
    cfg = config_from_dict(ServiceConfig, state["config"])
    topo = config_from_dict(TopologyConfig, state["topology"])
    use_backend = backend if backend is not None else str(state["backend"])
    if telemetry is None and state.get("telemetry") is not None:
        telemetry = True
    # All rebuild work happens under a deactivated telemetry sink, so the
    # restored counters come exclusively from the checkpoint.
    prev = tm.active()
    tm.activate(None)
    try:
        session = ServiceSession(
            cfg,
            topology=topo,
            backend=use_backend,
            telemetry=telemetry,
            bootstrap=False,
        )
        _restore_engine(session, state["engine"], cfg, use_backend)
        _restore_session_state(session, state["session"])
    finally:
        tm.activate(prev)
    if session.telemetry is not None and state.get("telemetry") is not None:
        for name, value in state["telemetry"]["counters"].items():
            session.telemetry.inc(name, int(value))
    return session


def _restore_engine(
    session: Any, es: dict[str, Any], cfg: Any, backend: str
) -> None:
    eng = session.engine
    # 1. Topology: replay the failed-link stack over the base graph.
    graph = session._base_graph
    failed: list[tuple[int, int, Relationship]] = []
    for u, v, rel_name in es["failed"]:
        rel = Relationship[rel_name]
        graph = without_link(graph, int(u), int(v))
        failed.append((int(u), int(v), rel))
    eng.graph = graph
    eng._failed = failed
    # 2. Routing: a fresh cache over the live graph, views recomputed for
    # every checkpointed destination (live views provably equal a fresh
    # recompute — the crosscheck contract), counters restored verbatim.
    eng.routing = IncrementalRouting(
        graph,
        backend=backend,
        recompute="dirty" if cfg.mode == "incremental" else "all",
    )
    for dest in es["routing_dests"]:
        eng.routing(int(dest))
    counters = es["counters"]
    eng.routing.dests_recomputed = int(counters["dests_recomputed"])
    eng.routing.dests_rebased = int(counters["dests_rebased"])
    # 3. Directed-link interning, in checkpointed order, then the dense
    # data-plane arrays verbatim (hysteresis bits must NOT be recomputed
    # — they are state, not a function of current load).
    for u, v in es["links"]:
        eng._intern_link(int(u), int(v))
    n = len(es["links"])
    eng._cap_factor[:n] = np.asarray(es["cap_factor"], dtype=np.float64)
    eng._exo_frac[:n] = np.asarray(es["exo_frac"], dtype=np.float64)
    eng._congested[:n] = np.asarray(es["congested"], dtype=bool)
    eng._alloc = np.zeros(eng._congested.shape[0])
    eng._alloc[:n] = np.asarray(es["alloc"], dtype=np.float64)
    # 4. The flow population (insertion order == checkpoint order ==
    # ascending registration order).
    eng._flows = {}
    for fid, src, dst, path, on_alt, switches, rate in es["flows"]:
        f = _SimFlow(int(fid), int(src), int(dst))
        if path is not None:
            f.path = tuple(int(x) for x in path)
            f.link_ids = eng._intern_path(f.path)
            f.on_alt = bool(on_alt)
        f.switches = int(switches)
        f.rate = float(rate)
        eng._flows[f.flow_id] = f
    eng._next_flow_id = int(es["next_flow_id"])
    eng._event_no = int(es["event_no"])
    # 5. Solver: re-add the flow table, then one priming fill.  Fill
    # results are independent of column numbering, so the rebuilt pool's
    # rates, memo tick and last-round count land exactly where the
    # uninterrupted solver's were; lifetime counters then restore on top.
    for f in eng._flows.values():
        if f.path is not None:
            eng.solver.set_flow(f.flow_id, f.link_ids)
    eng.solver.set_capacity(eng._residual_capacity())
    eng.solver.pool.solve()
    pool = eng.solver.pool
    # Seed the free-list *after* the live flows (so they don't consume
    # the recycled segments) — replay then recycles columns exactly as
    # the uninterrupted pool would, keeping ``flowsim.cols_reused`` in
    # lockstep.
    pool.seed_free_segments(
        {int(n): int(c) for n, c in es.get("free_segments", {}).items()}
    )
    pc = counters["pool"]
    pool.pool_hits = int(pc["pool_hits"])
    pool.cols_reused = int(pc["cols_reused"])
    pool.warm_rounds_saved = int(pc["warm_rounds_saved"])
    pool.rounds_total = int(pc["rounds_total"])
    pool.solves = int(pc["solves"])
    pool.hits = int(pc["hits"])
    eng.solver.solves = int(counters["solver_solves"])
    eng.solver.hits = int(counters["solver_hits"])
    # 6. The record ring.
    eng.records.clear()
    for row in es["records"]:
        eng.records.append(EventRecord(**row))
    # 7. Measurement state: detector windows verbatim (a v1 checkpoint
    # has no "rtt" key; a config with detector="oracle" has no monitor —
    # both sides must agree via the round-tripped config).
    rtt = es.get("rtt")
    mon = eng._rtt
    if rtt is not None and mon is not None:
        mon._rtt_samples_total = int(rtt["samples_total"])
        mon._rtt_alarms_total = int(rtt["alarms_total"])
        series = {}
        for fid, base, count, last, streak, baseline, values, epochs in rtt[
            "series"
        ]:
            det = mon.new_detector()
            det._cp_base = int(base)
            det._cp_count = int(count)
            det._cp_last = int(last)
            det._cp_streak = int(streak)
            det._cp_baseline = None if baseline is None else float(baseline)
            det._cp_values = [float(x) for x in values]
            det._cp_epochs = [int(x) for x in epochs]
            series[int(fid)] = det
        mon._rtt_series = series


def _restore_session_state(session: Any, ss: dict[str, Any]) -> None:
    session._tick = int(ss["tick"])
    session._clock = float(ss["clock_s"])
    session._stream_index = int(ss["stream_index"])
    session.arrivals_total = int(ss["arrivals_total"])
    session.retired_total = int(ss["retired_total"])
    expiry = [(int(t), int(fid)) for t, fid in ss["expiry"]]
    heapq.heapify(expiry)
    session._expiry = expiry
    fed: deque[tuple[float, StreamEvent]] = deque()
    for dt, kind, fields in ss["fed"]:
        event_cls = STREAM_EVENT_TYPES.get(kind)
        if event_cls is None:
            raise ConfigError(f"unknown fed event kind {kind!r} in checkpoint")
        fed.append((float(dt), event_cls(**fields)))
    session._fed = fed
    # Pre-v3 documents have no pending buffer (every tick was applied
    # immediately), so restore to an empty one.
    pending: list[ServiceTick] = []
    for retire, kind, fields in ss.get("pending", []):
        event: StreamEvent | None = None
        if kind is not None:
            event_cls = STREAM_EVENT_TYPES.get(kind)
            if event_cls is None:
                raise ConfigError(
                    f"unknown pending event kind {kind!r} in checkpoint"
                )
            event = event_cls(**fields)
        pending.append(
            ServiceTick(retire=tuple(int(x) for x in retire), event=event)
        )
    session._pending = pending
