"""The unbounded, deterministic event stream and its event vocabulary.

Event ``i`` of the stream is a **pure function of ``(seed, i)``**: every
event draws from its own ``default_rng((seed, salt, i))``, so the stream
has no cursor state beyond the next index.  That is the property the
checkpoint format leans on — a restored session re-derives event ``i``
bit-for-bit instead of serializing RNG internals.

Events resolve *symbolic* choices (which link to flap, flap direction)
against live engine state, exactly like the scenario vocabulary's
``pick="busiest"`` targets: the drawn numbers are frozen in the event,
the resolution is a deterministic function of simulation state, so
replay after restore reproduces identical decisions.

:class:`ServiceTick` is the compound event the session hands to
:meth:`~repro.scenario.engine.ScenarioEngine.step` each iteration: due
flow retirements first, then the stream event — one engine epoch per
tick, so the whole eight-step per-event procedure (re-route, warm
re-solve, hysteresis, certification) runs on service traffic unchanged.
"""

from __future__ import annotations

import dataclasses
from typing import TYPE_CHECKING, Union

import numpy as np

from ..errors import ConfigError, SimulationError
from ..topology.asgraph import ASGraph
from ..traffic.matrix import content_provider_ranking, zipf_weights
from .config import ServiceConfig

if TYPE_CHECKING:  # pragma: no cover - types only
    from ..scenario.engine import EventEffect, ScenarioEngine

__all__ = [
    "BatchTick",
    "CapacityJitter",
    "EventStream",
    "FlowArrival",
    "LinkFlap",
    "ServiceTick",
    "StreamEvent",
    "merge_effects",
]

#: salt separating the stream's RNG family from the scenario engine's.
_STREAM_SALT = 411_934_003


@dataclasses.dataclass(frozen=True)
class FlowArrival:
    """One flow joins the population for ``lifetime`` stream events."""

    src: int
    dst: int
    #: retirement delay in stream events (>= 1), drawn at arrival.
    lifetime: int
    kind = "arrival"

    def apply(self, engine: "ScenarioEngine") -> "EventEffect":
        """Register the flow through the engine's explicit-flow primitive."""
        return engine.add_explicit_flows([(self.src, self.dst)])


@dataclasses.dataclass(frozen=True)
class LinkFlap:
    """Fail a live link, or recover the most recent failure.

    ``recover_draw < 0.5`` prefers recovery whenever something is down;
    recovery is *forced* once ``max_failed`` links are out (so an
    unbounded stream cannot shred the topology).  ``pick`` selects the
    victim from the live graph's sorted link list — resolution depends
    only on frozen draws and checkpointed state.
    """

    pick: float
    recover_draw: float
    max_failed: int
    kind = "link_flap"

    def apply(self, engine: "ScenarioEngine") -> "EventEffect":
        """Resolve flap direction and victim against live engine state."""
        failed = engine.failed_links
        if failed and (self.recover_draw < 0.5 or len(failed) >= self.max_failed):
            return engine.recover_link()
        links = engine.graph.links()
        if not links:
            raise SimulationError("graph has no links left to fail")
        u, v, _rel = links[min(int(self.pick * len(links)), len(links) - 1)]
        return engine.fail_link(u, v)


@dataclasses.dataclass(frozen=True)
class CapacityJitter:
    """Set one live link (both directions) to ``factor`` × base capacity.

    ``factor`` is absolute, not cumulative, so jitters never compound
    into silence; a later jitter near 1.0 restores the link.
    """

    pick: float
    factor: float
    kind = "capacity_jitter"

    def apply(self, engine: "ScenarioEngine") -> "EventEffect":
        """Resolve the victim link and rescale its capacity."""
        links = engine.graph.links()
        if not links:
            raise SimulationError("graph has no links left to jitter")
        u, v, _rel = links[min(int(self.pick * len(links)), len(links) - 1)]
        return engine.scale_capacity(u, v, self.factor)


StreamEvent = Union[FlowArrival, LinkFlap, CapacityJitter]

#: event-kind label -> class, for checkpoint round-tripping of fed events.
STREAM_EVENT_TYPES: dict[str, type] = {
    "arrival": FlowArrival,
    "link_flap": LinkFlap,
    "capacity_jitter": CapacityJitter,
}


def merge_effects(effects: "list[EventEffect]") -> "EventEffect":
    """Fold several :class:`EventEffect`\\ s into one.

    Removed links and new flows concatenate in application order; dirty
    and capacity-changed sets dedupe ascending; targets join with ``"; "``
    — the same algebra :class:`ServiceTick` has always used for its
    retire-then-event pair, shared here so :class:`BatchTick` merges
    identically.
    """
    from ..scenario.engine import EventEffect

    if len(effects) == 1:
        return effects[0]
    removed: list[tuple[int, int]] = []
    dirty: list[int] = []
    capacity: list[int] = []
    new: list[int] = []
    targets: list[str] = []
    for e in effects:
        removed.extend(e.removed)
        dirty.extend(e.dirty)
        capacity.extend(e.capacity_changed)
        new.extend(e.new_flows)
        if e.target:
            targets.append(e.target)
    return EventEffect(
        removed=tuple(removed),
        dirty=tuple(sorted(dict.fromkeys(dirty))),
        capacity_changed=tuple(sorted(dict.fromkeys(capacity))),
        new_flows=tuple(new),
        target="; ".join(targets),
    )


@dataclasses.dataclass(frozen=True)
class ServiceTick:
    """One session iteration: due retirements, then the stream event."""

    retire: tuple[int, ...] = ()
    event: StreamEvent | None = None

    @property
    def kind(self) -> str:
        """The stream event's kind (``"retire"`` for a pure-retirement tick)."""
        return self.event.kind if self.event is not None else "retire"

    def apply(self, engine: "ScenarioEngine") -> "EventEffect":
        """Apply retirements then the stream event; merge their effects."""
        effects: list[EventEffect] = []
        if self.retire:
            effects.append(engine.retire_flows(self.retire))
        if self.event is not None:
            effects.append(self.event.apply(engine))
        return merge_effects(effects)


@dataclasses.dataclass(frozen=True)
class BatchTick:
    """A coalesced run of consecutive arrival/retirement ticks.

    The session buffers non-barrier ticks up to
    ``ServiceConfig.batch_max`` and hands the whole run to the engine as
    *one* event: each constituent tick applies to the flow table in
    arrival order (so a flow that arrives and retires within the batch
    resolves correctly), then the engine routes the merged affected set
    and issues a single delta-solve instead of one per tick.  Barrier
    events (flap, jitter, fed, verify-cadence) never enter a batch.
    """

    ticks: tuple[ServiceTick, ...]
    kind = "batch"

    @property
    def events(self) -> int:
        """Service ticks coalesced into this engine epoch."""
        return len(self.ticks)

    def apply(self, engine: "ScenarioEngine") -> "EventEffect":
        """Apply every buffered tick in order; merge all their effects."""
        return merge_effects([t.apply(engine) for t in self.ticks])


class EventStream:
    """Pure-function view of the unbounded event sequence.

    Sampling tables (Zipf source ranking, stub consumers) derive from
    the *base* topology, never the live failed graph, so they are
    reconstructible from the checkpointed :class:`~repro.topology
    .generator.TopologyConfig` alone.
    """

    def __init__(self, graph: ASGraph, config: ServiceConfig) -> None:
        config.validate()
        self.config = config
        self._nodes = np.fromiter(graph.nodes(), dtype=np.int64)  # mifocheck: derivable: pure function of the base graph
        if self._nodes.shape[0] < 2:
            raise ConfigError("service stream needs at least two ASes")
        if config.traffic == "zipf":
            ranked = content_provider_ranking(graph)
            self._sources = np.asarray(ranked, dtype=np.int64)  # mifocheck: derivable: pure function of (graph, config)
            self._src_cum = np.cumsum(  # mifocheck: derivable: pure function of (graph, config)
                zipf_weights(len(ranked), config.zipf_alpha)
            )
            stubs = np.asarray(graph.stub_ases(), dtype=np.int64)
            if stubs.size == 0:
                raise ConfigError("graph has no stub ASes to consume traffic")
            self._dsts = stubs  # mifocheck: derivable: pure function of (graph, config)
        else:
            self._sources = self._nodes
            self._src_cum = None
            self._dsts = self._nodes

    def event_at(self, index: int) -> tuple[float, StreamEvent]:
        """``(dt, event)`` for stream position ``index``.

        ``dt`` is the exponential inter-arrival gap preceding the event
        (the Poisson clock); the event mix follows the configured
        probabilities, everything drawn from the per-index generator.
        """
        if index < 0:
            raise ConfigError("stream index must be >= 0")
        cfg = self.config
        rng = np.random.default_rng((cfg.seed, _STREAM_SALT, index))
        dt = float(rng.exponential(1.0 / cfg.arrival_rate))
        mix = float(rng.random())
        if mix < cfg.p_link_event:
            return dt, LinkFlap(
                pick=float(rng.random()),
                recover_draw=float(rng.random()),
                max_failed=cfg.max_failed_links,
            )
        if mix < cfg.p_link_event + cfg.p_capacity_event:
            return dt, CapacityJitter(
                pick=float(rng.random()),
                factor=float(0.25 + 0.75 * rng.random()),
            )
        src = self._sample_src(rng)
        dst = self._sample_dst(src, rng)
        lifetime = max(
            1, int(np.ceil(rng.exponential(cfg.mean_lifetime_events)))
        )
        return dt, FlowArrival(src=src, dst=dst, lifetime=lifetime)

    def _sample_src(self, rng: np.random.Generator) -> int:
        if self._src_cum is None:
            return int(self._sources[int(rng.integers(self._sources.shape[0]))])
        idx = int(np.searchsorted(self._src_cum, rng.random(), side="right"))
        return int(self._sources[min(idx, self._sources.shape[0] - 1)])

    def _sample_dst(self, src: int, rng: np.random.Generator) -> int:
        pool = self._dsts
        for _attempt in range(64):
            dst = int(pool[int(rng.integers(pool.shape[0]))])
            if dst != src:
                return dst
        # Degenerate pool (e.g. a single stub that happens to be the
        # source): fall back to the smallest other AS, deterministically.
        for cand in self._nodes.tolist():
            if int(cand) != src:
                return int(cand)
        raise ConfigError("no destination AS distinct from source")
