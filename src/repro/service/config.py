"""Service-mode configuration.

:class:`ServiceConfig` is the streaming counterpart of
:class:`~repro.flowsim.simulator.FluidSimConfig` and
:class:`~repro.scenario.engine.ScenarioConfig`: a frozen dataclass of
plain scalars, validated up front, serializable through
:mod:`repro.config` (the checkpoint format embeds it verbatim).  The
data-plane knobs (capacity, hysteresis thresholds, update mode) mirror
``ScenarioConfig`` field for field; the stream knobs describe the
unbounded workload — Poisson arrival clock, Zipf source popularity,
event-mix probabilities, flow lifetimes — plus the service's own
bounded-memory and cadence settings.
"""

from __future__ import annotations

import dataclasses

from ..errors import ConfigError
from ..scenario.engine import ScenarioConfig

__all__ = ["ServiceConfig"]


@dataclasses.dataclass(frozen=True)
class ServiceConfig:
    """Knobs of the long-lived streaming service."""

    #: data plane — identical semantics to ``ScenarioConfig``.
    link_capacity_bps: float = 1e9
    congest_threshold: float = 0.95
    clear_threshold: float = 0.70
    #: control-plane update policy: ``"incremental"`` or ``"full"``.
    mode: str = "incremental"
    #: congestion signal driving deflection: ``"oracle"`` (hysteresis
    #: bits over true link load) or a measurement-driven detector over
    #: per-path RTT samples (``"threshold"`` | ``"changepoint"``).
    #: Detector state rides along in checkpoints.
    detector: str = "oracle"
    #: seed of the event stream (event ``i`` is a pure function of
    #: ``(seed, i)``, which is what makes restore-and-replay exact).
    seed: int = 2014
    #: mean stream events per virtual second (Poisson inter-arrivals).
    arrival_rate: float = 200.0
    #: mean flow lifetime measured in stream events (exponential).
    mean_lifetime_events: float = 120.0
    #: per-event probability that the event is a link flap.
    p_link_event: float = 0.02
    #: per-event probability that the event is a capacity jitter.
    p_capacity_event: float = 0.02
    #: flap events force recovery once this many links are down.
    max_failed_links: int = 4
    #: arrival endpoint sampling: ``"zipf"`` (ranked content providers
    #: toward stub consumers, the paper's power-law workload) or
    #: ``"uniform"`` (any distinct AS pair).
    traffic: str = "zipf"
    #: Zipf skew of the source popularity ranking.
    zipf_alpha: float = 1.0
    #: ring-buffer bound on retained per-event records (bounded memory).
    record_capacity: int = 1024
    #: re-certify routing invariants every N events (0 = never).
    verify_every: int = 0
    #: CLI checkpoint cadence in events (0 = only on demand).
    checkpoint_every: int = 0
    #: coalesce up to this many consecutive arrival/retirement ticks into
    #: one engine epoch (one delta-solve instead of N).  Flap, jitter,
    #: fed, and verify-cadence ticks are barriers that always flush.
    #: ``1`` (the default) applies every tick immediately — the exact
    #: one-at-a-time semantics of earlier releases.
    batch_max: int = 1

    def scenario_config(self) -> ScenarioConfig:
        """The engine-facing projection of these knobs.

        Per-event verification is driven by the session's
        ``verify_every`` cadence (a ``step(verify=...)`` override), so
        the engine's own always-on knob stays off.
        """
        return ScenarioConfig(
            link_capacity_bps=self.link_capacity_bps,
            congest_threshold=self.congest_threshold,
            clear_threshold=self.clear_threshold,
            mode=self.mode,
            verify=False,
            crosscheck=False,
            record_capacity=self.record_capacity,
            detector=self.detector,
        )

    def validate(self) -> None:
        """Reject inconsistent knob combinations."""
        self.scenario_config().validate()
        if self.arrival_rate <= 0:
            raise ConfigError("arrival_rate must be positive")
        if self.mean_lifetime_events < 1.0:
            raise ConfigError("mean_lifetime_events must be >= 1")
        if not 0.0 <= self.p_link_event <= 1.0:
            raise ConfigError("p_link_event outside [0, 1]")
        if not 0.0 <= self.p_capacity_event <= 1.0:
            raise ConfigError("p_capacity_event outside [0, 1]")
        if self.p_link_event + self.p_capacity_event >= 1.0:
            raise ConfigError(
                "p_link_event + p_capacity_event must leave room for arrivals"
            )
        if self.max_failed_links < 1:
            raise ConfigError("max_failed_links must be >= 1")
        if self.traffic not in ("zipf", "uniform"):
            raise ConfigError(
                f"traffic {self.traffic!r} not in ('zipf', 'uniform')"
            )
        if self.zipf_alpha <= 0:
            raise ConfigError("zipf_alpha must be positive")
        if self.verify_every < 0:
            raise ConfigError("verify_every must be >= 0")
        if self.checkpoint_every < 0:
            raise ConfigError("checkpoint_every must be >= 0")
        if self.batch_max < 1:
            raise ConfigError("batch_max must be >= 1")
