"""AS-level MIFO path construction for the fluid simulator.

The packet-level engine (:mod:`repro.mifo.engine`) makes one deflection
decision per packet per router.  At the AS level the same logic collapses to
a hop-by-hop walk: at each AS, follow the default BGP next hop unless the AS
is MIFO-capable and its default egress link is congested, in which case
deflect to the RIB alternative with the greatest spare direct-link capacity
— subject to the valley-free Tag-Check, with the tag bit derived from how
the packet entered this AS.

Loop-freedom: every step of this walk satisfies the paper's Eq. 3 — default
steps because any BGP-exported route step is valley-free-compatible, and
deflected steps because Tag-Check enforces Eq. 3 explicitly.  The paper's
Theorem (whose proof assumes cycles of length > 2) rules out repeating
*cycles*; a compliant walk may still visit one AS twice — climbing through
it on the up-leg and descending through it again on the down-leg (e.g.
``a -> b -> c -> b -> d`` with ``b < c``) — but can never reuse a
*directed* inter-AS link, because the walk's phase structure is
``up* peer? down*``: up-steps strictly climb the acyclic provider
hierarchy, down-steps strictly descend it, and a link cannot be both an
up-step and a down-step in the same direction.  :class:`MifoPathBuilder`
therefore asserts (a) no directed link repeats and (b) the walk stays
within ``2·|V|`` hops; either firing means the valley-free invariant is
broken — which the ablation tests demonstrate by disabling Tag-Check.
"""

from __future__ import annotations

import dataclasses
from collections.abc import Callable

from .. import telemetry as tm
from ..bgp.propagation import RoutingSource, RoutingView
from ..errors import LoopDetectedError, NoRouteError
from ..topology.asgraph import ASGraph
from ..topology.relationships import Relationship
from .tag import check_bit, tag_for_upstream

__all__ = ["PathOutcome", "MifoPathBuilder"]

#: ``congested(u, v)`` — is the directed inter-AS link u->v congested?
CongestedFn = Callable[[int, int], bool]
#: ``spare(u, v)`` — spare capacity (bps) of the directed link u->v.
SpareFn = Callable[[int, int], float]


@dataclasses.dataclass(frozen=True, slots=True)
class PathOutcome:
    """Result of routing one flow at the AS level."""

    path: tuple[int, ...]  #: AS-level path, source and destination inclusive
    deflections: int  #: number of hops that deviated from the default
    dropped: bool = False  #: packet-level MIFO would have dropped (no valid alt)

    @property
    def used_alternative(self) -> bool:
        """True when at least one deflection occurred."""
        return self.deflections > 0


class MifoPathBuilder:
    """Builds the path a flow's packets take under MIFO.

    ``capable`` is the set of MIFO-deploying ASes (partial-deployment
    studies vary it); other ASes always use their default next hop.
    ``deflect_uncongested_only``: when True, an alternative whose own
    direct link is congested is never chosen (there is no point moving
    congestion sideways); the flow stays on the default.
    ``event_fields`` is merged into every telemetry event this builder
    records — the scenario engine stamps its epoch number here so trace
    consumers can match each deflection against the routing state that
    justified it (a FIB from a *previous* epoch would refute it).
    """

    def __init__(
        self,
        graph: ASGraph,
        routing: RoutingSource,
        capable: frozenset[int],
        *,
        tag_check_enabled: bool = True,
        deflect_uncongested_only: bool = True,
        alt_selection: str = "greedy",
        event_fields: "dict[str, tm.EventValue] | None" = None,
    ) -> None:
        if alt_selection not in ("greedy", "first", "random"):
            raise ValueError(f"unknown alt_selection {alt_selection!r}")
        self.graph = graph
        self.routing = routing
        self.capable = capable
        self.tag_check_enabled = tag_check_enabled
        self.deflect_uncongested_only = deflect_uncongested_only
        #: "greedy" = paper Section III-C (max spare direct-link capacity);
        #: "first" = highest-preference RIB alternative; "random" =
        #: deterministic pseudo-random pick.  The non-greedy modes exist
        #: for the alternative-selection ablation bench.
        self.alt_selection = alt_selection
        self.event_fields: dict[str, tm.EventValue] = dict(event_fields or {})

    def default_path(self, src: int, dst: int) -> tuple[int, ...]:
        """The plain BGP path (used by the BGP baseline and as fallback)."""
        return self.routing(dst).best_path(src)

    def build_path(
        self,
        src: int,
        dst: int,
        congested: CongestedFn,
        spare: SpareFn,
    ) -> PathOutcome:
        """Walk from ``src`` to ``dst`` under the current congestion state.

        Raises :class:`NoRouteError` if ``src`` has no route at all and
        :class:`LoopDetectedError` if the walk revisits an AS (impossible
        with Tag-Check on; reachable in ablation mode).
        """
        routing = self.routing(dst)
        if not routing.has_route(src):
            raise NoRouteError(src, dst)

        graph = self.graph
        path = [src]
        used_links: set[tuple[int, int]] = set()
        upstream: int | None = None
        u = src
        deflections = 0
        limit = 2 * len(graph) + 2

        with tm.span("mifo.deflect"):
            while u != dst:
                nh = routing.next_hop(u)
                nxt = nh
                if u in self.capable and congested(u, nh):
                    alt, filtered = self._pick_alternative(
                        routing, u, upstream, nh, congested, spare
                    )
                    if alt is not None:
                        nxt = alt
                        deflections += 1
                        t = tm.active()
                        if t is not None:
                            t.inc("mifo.deflections")
                            t.event(
                                "deflection",
                                **{"as": u},
                                dst=dst,
                                upstream=upstream,
                                default_nh=nh,
                                chosen=alt,
                                cause="congested_link",
                                spare_bps=spare(u, alt),
                                **self.event_fields,
                            )
                    elif filtered:
                        t = tm.active()
                        if t is not None:
                            t.inc("mifo.tagcheck_drops")
                            t.event(
                                "tagcheck_drop",
                                **{"as": u},
                                dst=dst,
                                upstream=upstream,
                                default_nh=nh,
                                cause="tag_check",
                                tagcheck_filtered=filtered,
                                **self.event_fields,
                            )
                link = (u, nxt)
                if link in used_links:
                    # A repeated directed link implies a cycle — impossible
                    # with Tag-Check on (see module docstring).
                    raise LoopDetectedError(path + [nxt])
                used_links.add(link)
                upstream, u = u, nxt
                path.append(u)
                if len(path) > limit:  # unreachable with Tag-Check on
                    raise LoopDetectedError(path)
        tm.observe("mifo.path_hops", len(path) - 1)
        return PathOutcome(tuple(path), deflections)

    def _pick_alternative(
        self,
        routing: RoutingView,
        u: int,
        upstream: int | None,
        default_nh: int,
        congested: CongestedFn,
        spare: SpareFn,
    ) -> tuple[int | None, int]:
        """Greedy selection among valley-free-permitted RIB alternatives.

        Returns ``(chosen, tagcheck_filtered)``: the alternative (or None)
        plus how many candidates Tag-Check rejected, so the caller can
        attribute an empty move set to the valley-free guard.
        """
        graph = self.graph
        bit = tag_for_upstream(
            None if upstream is None else graph.relationship(u, upstream)
        )
        candidates: list[int] = []
        tagcheck_filtered = 0
        for entry in routing.rib(u):
            v = entry.neighbor
            if v == default_nh:
                continue
            if self.tag_check_enabled and not check_bit(bit, entry.relationship):
                tagcheck_filtered += 1
                continue
            if self.deflect_uncongested_only and congested(u, v):
                continue
            candidates.append(v)
        if not candidates:
            return None, tagcheck_filtered
        if self.alt_selection == "first":
            return candidates[0], tagcheck_filtered
        if self.alt_selection == "random":
            # Deterministic hash pick so runs stay reproducible.
            pick = candidates[(u * 2654435761 + default_nh) % len(candidates)]
            return pick, tagcheck_filtered
        return max(candidates, key=lambda v: (spare(u, v), -v)), tagcheck_filtered

    def alternatives_allowed(
        self, u: int, upstream: int | None, dst: int
    ) -> list[tuple[int, Relationship]]:
        """All RIB alternatives at ``u`` permitted by Tag-Check given the
        upstream — the move set of the path-diversity DP (Fig. 7)."""
        routing = self.routing(dst)
        default_nh = routing.next_hop(u)
        bit = tag_for_upstream(
            None if upstream is None else self.graph.relationship(u, upstream)
        )
        out = []
        for entry in routing.rib(u):
            if entry.neighbor == default_nh:
                continue
            if check_bit(bit, entry.relationship):
                out.append((entry.neighbor, entry.relationship))
        return out
