"""The MIFO Daemon — control-plane companion of the forwarding engine.

In the prototype (paper Section V-A) this is a XORP module that (a) mines
the BGP RIB for alternative paths, (b) collects available link capacity
from the data plane, and (c) keeps the FIB's ``alt`` port pointed at the
best alternative.  Here it is a periodic task on the DES clock doing the
same three jobs against :class:`repro.dataplane.router.Router`.

Greedy selection (Section III-C): instead of probing end-to-end path
bandwidth — too slow and unscalable for 50k ASes — each border router
monitors the *spare capacity of its directly connected inter-AS links*, and
iBGP peers exchange these measurements over their existing TCP session.
The alternative with maximum spare direct-link capacity wins.
"""

from __future__ import annotations

import dataclasses
import typing

from .. import telemetry as tm
from ..dataplane.port import Port
from ..dataplane.router import Router

if typing.TYPE_CHECKING:  # pragma: no cover
    from ..dataplane.events import Simulator

__all__ = ["AltCandidate", "MifoDaemon"]


@dataclasses.dataclass(frozen=True)
class AltCandidate:
    """One alternative path candidate for a destination.

    ``port`` is the local port packets are pushed to (an eBGP port, or an
    iBGP port toward the border router owning the alternative).
    ``measured_port`` is the port whose inter-AS link capacity gauges the
    candidate — the local eBGP port itself, or the *remote* border router's
    eBGP egress as learned through the iBGP measurement exchange.
    """

    port: Port
    measured_port: Port


class MifoDaemon:
    """Periodically refreshes link measurements and FIB ``alt`` ports."""

    def __init__(
        self, sim: "Simulator", router: Router, *, interval: float = 0.05
    ) -> None:
        self.sim = sim
        self.router = router
        self.interval = interval
        self._candidates: dict[str, list[AltCandidate]] = {}
        self._started = False
        self.updates = 0  #: number of alt-port repoints performed

    def register_alternatives(self, dst: str, candidates: list[AltCandidate]) -> None:
        """Declare the RIB-derived alternatives for a destination.

        In the prototype the daemon reads these from the XORP BGP module's
        RIB; experiments here compute them from
        :class:`~repro.bgp.speaker.BgpNetwork` /
        :class:`~repro.bgp.propagation.DestinationRouting` and hand them
        over — same information, same zero protocol overhead.
        """
        self._candidates[dst] = list(candidates)

    def start(self) -> None:
        """Start the periodic probe tick (idempotent)."""
        if self._started:
            return
        self._started = True
        self.sim.schedule(self.interval, self._tick)

    def _tick(self) -> None:
        now = self.sim.now
        # (b) collect link capacity measurements from the data plane.
        for port in self.router.ports:
            port.sample_utilization(now)
        # (c) repoint alt ports at the best-measured alternative.
        for dst, candidates in self._candidates.items():
            if not candidates:
                continue
            best = max(candidates, key=lambda c: c.measured_port.spare_capacity(now))
            entry = self.router.fib.lookup(dst)
            if entry.alt_port is not best.port:
                entry.alt_port = best.port
                self.updates += 1
                tm.inc("mifo.daemon_updates")
        self.sim.schedule(self.interval, self._tick)
