"""The "one bit is enough" Tag-Check strategy (paper Section III-A4).

Valley-free verification on the data plane needs, at the packet's *exit*
router of an AS, the relationship with the *upstream* neighbor known only at
the *entry* router.  The paper shows one bit suffices:

* **Tag** (entry router, eBGP ingress): set the bit iff the upstream
  neighbor is a customer (``V_{i-1} < V_i``);
* **Check** (exit router, eBGP egress onto an *alternative* path): forward
  iff the bit is set **or** the downstream neighbor is a customer
  (``V_i > V_{i+1}``) — exactly Eq. 3; otherwise drop.

These pure functions are shared by the packet-level engine
(:mod:`repro.mifo.engine`) and the AS-level deflector
(:mod:`repro.mifo.deflection`), so both planes enforce the identical rule
the loop-freedom theorem covers.
"""

from __future__ import annotations

from ..topology.asgraph import ASGraph
from ..topology.relationships import Relationship

__all__ = ["tag_for_upstream", "check_bit", "transit_allowed"]


def tag_for_upstream(upstream_relationship: Relationship | None) -> bool:
    """Bit value set at the entry router.

    ``upstream_relationship`` is the relationship of the previous-hop AS as
    seen from the tagging AS; ``None`` means the packet originated inside
    this AS (own hosts), which we treat like a customer: the origin AS may
    start its packet in any direction — a path's *first* step is always
    valley-free-compatible.
    """
    return (
        upstream_relationship is None
        or upstream_relationship is Relationship.CUSTOMER
    )


def check_bit(bit: bool, downstream_relationship: Relationship) -> bool:
    """Exit-router check before forwarding onto an alternative eBGP path."""
    return bit or downstream_relationship is Relationship.CUSTOMER


def transit_allowed(
    graph: ASGraph, upstream: int | None, current: int, downstream: int
) -> bool:
    """AS-level form of Tag-Check: may ``current`` transit a packet that
    arrived from ``upstream`` (None = locally originated) toward
    ``downstream``?  Equivalent to tagging at ingress and checking at
    egress."""
    up_rel = None if upstream is None else graph.relationship(current, upstream)
    down_rel = graph.relationship(current, downstream)
    return check_bit(tag_for_upstream(up_rel), down_rel)
