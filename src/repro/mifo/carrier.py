"""Tag-bit carriers — the paper's three deployment vehicles.

Section III-A4: "Multi-Protocol Label Switching (MPLS) is widely deployed
in ASes, where a label is inserted on each incoming packet at entering
point and removed at the exit point.  This is just right for 'Tag-Check'
strategy by consuming an unused bit in the label.  Even for the ASes
without using MPLS, it could be accomplished by taking one reserved bit in
IP header or allocate one bit in IP option field."

Three carriers implement one interface; the forwarding engine is agnostic:

* :class:`ReservedBitCarrier` — one reserved IP-header bit: zero wire
  overhead (the default);
* :class:`MplsLabelCarrier` — push a label at the AS entry point, read and
  pop it at the exit point: 4 bytes on the wire while inside the AS,
  matching real MPLS shim headers;
* :class:`IpOptionCarrier` — an IP option: 4 bytes end-to-end once set
  (options survive past the AS).
"""

from __future__ import annotations

import typing

from ..dataplane.packet import Packet

__all__ = [
    "TagCarrier",
    "ReservedBitCarrier",
    "MplsLabelCarrier",
    "IpOptionCarrier",
]

#: The bit position used inside an MPLS label / option word.
_TAG_BIT = 0x1
#: Base label value marking "MIFO label present".
_MIFO_LABEL = 0x4D0


class TagCarrier(typing.Protocol):
    """How the valley-free bit rides in the packet across one AS."""

    def tag(self, packet: Packet, bit: bool) -> None:
        """Attach/overwrite the bit at the AS entry point."""
        ...  # pragma: no cover

    def read(self, packet: Packet) -> bool:
        """Read the bit at the AS exit point."""
        ...  # pragma: no cover

    def strip(self, packet: Packet) -> None:
        """Remove per-AS state before the packet leaves the AS."""
        ...  # pragma: no cover


class ReservedBitCarrier:
    """One reserved IP-header bit — free, nothing to strip."""

    wire_overhead = 0

    def tag(self, packet: Packet, bit: bool) -> None:
        """Write the deflection bit directly on the packet."""
        packet.tag_bit = bit

    def read(self, packet: Packet) -> bool:
        """Read the deflection bit."""
        return packet.tag_bit

    def strip(self, packet: Packet) -> None:
        pass  # the bit travels in the fixed header; nothing to remove


class MplsLabelCarrier:
    """MPLS shim label pushed at ingress, popped at egress (4 bytes)."""

    wire_overhead = 4

    def tag(self, packet: Packet, bit: bool) -> None:
        """Set the bit on the top MPLS label (push or re-tag)."""
        label = _MIFO_LABEL | (_TAG_BIT if bit else 0)
        if packet.mpls_stack:
            packet.mpls_stack[-1] = label  # re-tag within the same AS
        else:
            packet.mpls_stack.append(label)
            packet.size += self.wire_overhead
        packet.tag_bit = bit  # keep the logical view coherent

    def read(self, packet: Packet) -> bool:
        """Read the bit from the top MPLS label."""
        if packet.mpls_stack:
            return bool(packet.mpls_stack[-1] & _TAG_BIT)
        return packet.tag_bit

    def strip(self, packet: Packet) -> None:
        """Pop the MPLS label and its wire overhead."""
        if packet.mpls_stack:
            packet.mpls_stack.pop()
            packet.size -= self.wire_overhead


class IpOptionCarrier:
    """An IP option word — 4 bytes that stay on the packet once added."""

    wire_overhead = 4

    def tag(self, packet: Packet, bit: bool) -> None:
        """Set the bit in an IP option (adds overhead once)."""
        if not packet.has_tag_option:
            packet.has_tag_option = True
            packet.size += self.wire_overhead
        packet.tag_bit = bit

    def read(self, packet: Packet) -> bool:
        """Read the bit from the IP option."""
        return packet.tag_bit

    def strip(self, packet: Packet) -> None:
        pass  # options are end-to-end; downstream ASes overwrite the bit
