"""The MIFO Forwarding Engine — paper Algorithm 1, line for line.

This is the data-plane heart of the paper: the per-packet procedure the
authors implemented as a Linux kernel module.  It runs as a pluggable
engine on :class:`repro.dataplane.router.Router` and performs

1. IP-in-IP detection / sender extraction / decapsulation (lines 1–3),
2. FIB lookup yielding default + alternative ports (line 4),
3. ingress tagging of the valley-free bit at eBGP entry points (lines 5–10),
4. the deflection trigger: local congestion **or** the packet was deflected
   to us by the default egress router (line 11),
5. encapsulation toward an iBGP peer when the alternative path exits
   through another border router (lines 12–15),
6. the Tag-Check before an eBGP alternative, dropping on violation
   (lines 16–21),
7. default forwarding otherwise (line 22).

A note on line 11: the pseudocode prints ``s = GetNextHop(Ialt)``, but the
prose of Section III-B is unambiguous — the deflected-packet test compares
the iBGP *sender* with the packet's **default** next hop ("If the nexthop
equals to sender ... it indicates the packet is 'deflected' from the
default path").  We implement the prose semantics.

Flow-level determinism (Section II-A): the engine pins each flow to a path
("packets with same color belong to the same flow") so deflection never
reorders packets within a flow.  A flow picks the alternative only at its
first packet under congestion, and resumes the default path only when the
alternative itself congests while the default has recovered — the sticky
behavior that produces the paper's Fig-9 stability (most flows switch at
most twice).
"""

from __future__ import annotations

import dataclasses

from .. import telemetry as tm
from ..dataplane.packet import Packet, PacketKind, flow_hash
from ..dataplane.port import PeerKind, Port
from ..dataplane.router import Router
from ..topology.relationships import Relationship
from .carrier import ReservedBitCarrier
from .tag import check_bit

__all__ = ["MifoEngineConfig", "MifoEngine", "bgp_engine"]


def bgp_engine(router: Router, packet: Packet, in_port: Port) -> None:
    """Baseline single-path forwarding: always the default FIB port."""
    entry = router.fib.lookup(packet.dst)
    router.counters.forwarded += 1
    entry.out_port.send(packet)


@dataclasses.dataclass(frozen=True)
class MifoEngineConfig:
    """Tunables of the forwarding engine.

    ``congestion_threshold`` is the tx-queue queuing ratio above which the
    default port counts as congested (the paper leaves the definition open
    and uses the queuing ratio; Section II-A).  A custom ``detector``
    (any ``port -> bool`` callable, see :mod:`repro.mifo.congestion`)
    overrides it.  The ablation benches flip ``tag_check_enabled`` /
    ``encap_enabled`` to demonstrate the loops and iBGP cycles each
    mechanism prevents.
    """

    congestion_threshold: float = 0.8
    #: optional custom congestion signal; None = queuing ratio >= threshold.
    detector: object | None = None
    #: how the tag bit rides in the packet (paper Section III-A4 offers
    #: an MPLS label bit, an IP reserved bit, or an IP option — see
    #: repro.mifo.carrier); default: reserved bit, zero overhead.
    carrier: object = dataclasses.field(default_factory=ReservedBitCarrier)
    #: a deflected flow resumes the default path only once the default
    #: port's queuing ratio falls to this level — hysteresis that prevents
    #: per-packet flapping and yields the paper's Fig-9 stability.
    resume_threshold: float = 0.1
    tag_check_enabled: bool = True
    encap_enabled: bool = True
    sticky_flows: bool = True
    #: fraction of flows the 5-tuple hash makes *eligible* for deflection
    #: in "hash" pin mode (Section II-A: "The eventual path for subsequent
    #: packet is determined by hashing").  1.0 = every congested flow may
    #: deflect; 0.5 = half the flow space sticks to the default no matter
    #: what (classic hash-bucketed traffic splitting).
    hash_deflect_fraction: float = 1.0
    #: "sticky" (default): a flow pins to the path it first chose, with
    #: hysteresis on resume.  "hash": the 5-tuple hash first gates which
    #: flows are *eligible* to deflect at all (the paper's literal
    #: description); eligible flows then follow the same sticky pinning —
    #: a hash split without stability would flap per packet.
    pin_mode: str = "sticky"
    #: a flow changes paths at most once per this many (virtual) seconds —
    #: the data-plane analogue of the fluid simulator's switch cooldown.
    #: Without it a lone deflected flow can oscillate (deflect -> default
    #: queue drains -> resume -> recongest), reordering on every cycle;
    #: size it to a few RTTs of the deployment.  0 disables the cooldown
    #: (suitable when flows are short relative to any sensible interval).
    min_switch_interval: float = 0.0


class MifoEngine:
    """Stateful per-router engine instance implementing Algorithm 1."""

    def __init__(self, config: MifoEngineConfig | None = None) -> None:
        self.config = config or MifoEngineConfig()
        #: flow_id -> "alt" | "default": the flow-level path pin.
        self._flow_path: dict[int, str] = {}
        #: flow_id -> virtual time of the last mid-flow path change.
        self._flow_last_switch: dict[int, float] = {}

    # -- helpers ---------------------------------------------------------
    def _is_congested(self, port: Port) -> bool:
        detector = self.config.detector
        if detector is not None:
            return bool(detector(port))
        if port.queuing_ratio >= self.config.congestion_threshold:
            tm.inc("mifo.congestion_signals")
            return True
        return False

    @staticmethod
    def _next_hop_router_name(port: Port) -> str | None:
        if port.link is None:
            return None
        device, _ = port.link.remote_of(port)
        return device.name

    # -- Algorithm 1 ------------------------------------------------------
    def __call__(self, router: Router, packet: Packet, in_port: Port) -> None:
        cfg = self.config
        sender: str | None = None

        # Lines 1-3: IP-in-IP handling.
        if packet.is_encapsulated:
            outer = packet.outer
            if outer.dst_router == router.name:
                packet.decapsulate()
                router.counters.decapsulated += 1
                sender = outer.src_router
            # else: outer destination is another iBGP peer — in a full-mesh
            # iBGP the encapsulating router always addresses its direct
            # peer, so transit of encapsulated packets does not occur here.

        # Line 4: FIB lookup.
        entry = router.fib.lookup(packet.dst)
        out_port, alt_port = entry.out_port, entry.alt_port

        # Lines 5-10: tag at the AS entry point.  HOST ingress counts as
        # "own traffic", tagged like a customer (the origin AS may start a
        # packet in any direction — see repro.mifo.tag).  The configured
        # carrier decides how the bit physically rides (reserved IP bit,
        # MPLS label, IP option — Section III-A4).
        carrier = cfg.carrier
        if in_port.peer_kind is PeerKind.EBGP:
            carrier.tag(
                packet, in_port.neighbor_relationship is Relationship.CUSTOMER
            )
            router.counters.tagged += 1
        elif in_port.peer_kind is PeerKind.HOST:
            carrier.tag(packet, True)

        # Line 11: deflect on local congestion, or because the default
        # egress router deflected this packet to us (sender == our default
        # next hop would send it straight back — the iBGP cycle of
        # Fig. 2(b)).
        deflected_to_us = (
            sender is not None and sender == self._next_hop_router_name(out_port)
        )
        must_deflect = deflected_to_us
        congested = self._is_congested(out_port)
        wants_alt = congested or deflected_to_us
        recovered = out_port.queuing_ratio <= self.config.resume_threshold

        now = out_port.link.sim.now if out_port.link is not None else 0.0
        if alt_port is not None and self._flow_decision(
            packet, wants_alt, must_deflect, recovered, now
        ):
            # Lines 12-15: alternative path lives on an iBGP peer.
            if alt_port.peer_kind is PeerKind.IBGP:
                if cfg.encap_enabled:
                    peer_name = self._next_hop_router_name(alt_port)
                    packet.encapsulate(router.name, peer_name)
                    router.counters.encapsulated += 1
                    t = tm.active()
                    if t is not None:
                        t.inc("mifo.encap_packets")
                        t.event("encap", router=router.name, peer=peer_name)
                router.counters.deflected += 1
                tm.inc("mifo.deflections")
                alt_port.send(packet)
                return
            # Lines 16-21: alternative path exits via eBGP — Tag-Check.
            down_rel = alt_port.neighbor_relationship
            if not cfg.tag_check_enabled or check_bit(carrier.read(packet), down_rel):
                router.counters.deflected += 1
                tm.inc("mifo.deflections")
                carrier.strip(packet)  # AS exit point: pop per-AS state
                alt_port.send(packet)
            else:
                router.counters.dropped_valley += 1
                t = tm.active()
                if t is not None:
                    t.inc("mifo.tagcheck_drops")
                    t.event(
                        "tagcheck_drop",
                        router=router.name,
                        cause="tag_check",
                        tag_bit=carrier.read(packet),
                    )
                self._flow_path.pop(packet.flow_id, None)
            return

        # Line 22: default path.
        router.counters.forwarded += 1
        if out_port.peer_kind is PeerKind.EBGP:
            carrier.strip(packet)  # AS exit point: pop per-AS state
        out_port.send(packet)

    # -- flow-level determinism -------------------------------------------
    def _flow_decision(
        self,
        packet: Packet,
        wants_alt: bool,
        must_deflect: bool,
        recovered: bool,
        now: float,
    ) -> bool:
        """Whether this packet goes to the alternative path.

        Control traffic (ACKs/probes) is light and follows the default path
        unless it *must* deflect (came back encapsulated).  Data flows are
        pinned: the pin changes only at flow start, when the default
        congests mid-flow, or — with hysteresis — once the default has
        fully recovered; mid-flow changes are rate-limited by the switch
        cooldown.
        """
        cfg = self.config
        if must_deflect:
            return True
        if packet.kind not in (PacketKind.DATA, PacketKind.CBR):
            return False
        if cfg.pin_mode == "hash":
            # The hash gates eligibility (the paper's 5-tuple split);
            # eligible flows then pin exactly like sticky mode, because a
            # hash split that re-decided per packet would reorder.
            bucket = flow_hash(packet.flow_id, 1000)
            if bucket >= cfg.hash_deflect_fraction * 1000:
                return False
        elif not cfg.sticky_flows:
            return wants_alt
        fid = packet.flow_id
        pinned = self._flow_path.get(fid)
        if pinned is None:
            choice = "alt" if wants_alt else "default"
            self._flow_path[fid] = choice
            self._flow_last_switch[fid] = now
            return choice == "alt"
        cooled = now - self._flow_last_switch.get(fid, 0.0) >= cfg.min_switch_interval
        if pinned == "default" and wants_alt and cooled:
            # Default congested mid-flow: deflect and stay deflected.
            self._flow_path[fid] = "alt"
            self._flow_last_switch[fid] = now
            return True
        if pinned == "alt" and recovered and not wants_alt and cooled:
            # Resume the default once it has drained (a "path switch back"
            # in Fig-9 terms).
            self._flow_path[fid] = "default"
            self._flow_last_switch[fid] = now
            return False
        return pinned == "alt"
