"""Pluggable congestion detectors for the forwarding engine.

The paper deliberately leaves the congestion definition open: "MIFO does
not specify how to identify the congestion on border routers.  It is an
open to different congestion definitions.  Throughout this paper, we
simply denote the queuing ratio of output ports as the congestion signal"
(Section II-A).  This module provides that default plus two alternatives,
all satisfying one protocol so :class:`repro.mifo.engine.MifoEngine` can
swap them freely:

* :class:`QueuingRatioDetector` — the paper's signal: tx-queue occupancy
  above a threshold;
* :class:`UtilizationDetector` — smoothed link utilization above a
  threshold (what the daemon's measurement windows see);
* :class:`HybridDetector` — either signal fires (queue catches bursts,
  utilization catches sustained load below the queue knee);
* :class:`RttChangepointDetector` — the measurement-driven signal: a
  per-port RTT proxy (propagation + queueing backlog) feeds an online
  changepoint detector (:mod:`repro.measure.changepoint`); the port is
  congested while a confirmed *upward* regime shift is in effect.
"""

from __future__ import annotations

import typing

from .. import telemetry as tm
from ..measure.changepoint import DetectorConfig, OnlineDetector

if typing.TYPE_CHECKING:  # pragma: no cover
    from ..dataplane.port import Port

__all__ = [
    "CongestionDetector",
    "QueuingRatioDetector",
    "UtilizationDetector",
    "HybridDetector",
    "RttChangepointDetector",
]

#: assumed mean packet size when estimating queue drain time (bits).
_MTU_BITS = 12_000.0


class CongestionDetector(typing.Protocol):
    """Anything callable as ``detector(port) -> bool``."""

    def __call__(self, port: "Port") -> bool: ...  # pragma: no cover


class QueuingRatioDetector:
    """The paper's default: output-port queuing ratio >= threshold."""

    __slots__ = ("threshold",)

    def __init__(self, threshold: float = 0.8) -> None:
        if not 0.0 < threshold <= 1.0:
            raise ValueError(f"threshold {threshold} outside (0, 1]")
        self.threshold = threshold

    def __call__(self, port: "Port") -> bool:
        if port.queuing_ratio >= self.threshold:
            tm.inc("mifo.congestion_signals")
            return True
        return False

    def __repr__(self) -> str:
        return f"QueuingRatioDetector({self.threshold})"


class UtilizationDetector:
    """Smoothed-utilization signal (needs the daemon sampling the port)."""

    __slots__ = ("threshold",)

    def __init__(self, threshold: float = 0.9) -> None:
        if not 0.0 < threshold <= 1.0:
            raise ValueError(f"threshold {threshold} outside (0, 1]")
        self.threshold = threshold

    def __call__(self, port: "Port") -> bool:
        if port.link is None:
            return False
        if port.spare_capacity(0.0) <= (1.0 - self.threshold) * port.link.rate_bps:
            tm.inc("mifo.congestion_signals")
            return True
        return False

    def __repr__(self) -> str:
        return f"UtilizationDetector({self.threshold})"


class HybridDetector:
    """Fires when either the queue or the utilization signal fires."""

    __slots__ = ("queue", "utilization")

    def __init__(
        self, queue_threshold: float = 0.8, utilization_threshold: float = 0.95
    ) -> None:
        self.queue = QueuingRatioDetector(queue_threshold)
        self.utilization = UtilizationDetector(utilization_threshold)

    def __call__(self, port: "Port") -> bool:
        return self.queue(port) or self.utilization(port)

    def __repr__(self) -> str:
        return f"HybridDetector({self.queue.threshold}, {self.utilization.threshold})"


class RttChangepointDetector:
    """Measurement-driven signal: changepoints over a per-port RTT proxy.

    Each call samples a deterministic RTT proxy for the port — twice the
    link's propagation delay plus the time the current queue backlog
    takes to drain at line rate — and pushes it into that port's online
    detector.  The port reads as congested from a confirmed *upward*
    regime shift until a confirmed downward one: deflection reacts to
    observed performance degradation rather than to the instantaneous
    queue, which is the paper's motivating scenario made operational.
    The detectors are pure functions of the pushed series (no RNG, no
    clock), so the signal is as deterministic as the queue itself.
    """

    __slots__ = ("config", "_series", "_elevated")

    def __init__(self, config: DetectorConfig | None = None) -> None:
        self.config = config if config is not None else DetectorConfig()
        self.config.validate()
        #: per-port detector state, keyed by port name.
        self._series: dict[str, OnlineDetector] = {}
        #: ports currently in a confirmed elevated-RTT regime.
        self._elevated: dict[str, bool] = {}

    def rtt_proxy_ms(self, port: "Port") -> float:
        """The port's RTT proxy: 2x propagation + queue drain time."""
        link = port.link
        assert link is not None
        queue_ms = 0.0
        if link.rate_bps > 0:
            queue_ms = port.queue_length * _MTU_BITS / link.rate_bps * 1e3
        return 2.0 * link.delay_s * 1e3 + queue_ms

    def __call__(self, port: "Port") -> bool:
        if port.link is None:
            return False
        detector = self._series.get(port.name)
        if detector is None:
            detector = OnlineDetector(self.config)
            self._series[port.name] = detector
        alarm = detector.push(self.rtt_proxy_ms(port), detector.count)
        if alarm is not None:
            self._elevated[port.name] = alarm.direction == "up"
        if self._elevated.get(port.name, False):
            tm.inc("mifo.congestion_signals")
            return True
        return False

    def __repr__(self) -> str:
        return (
            f"RttChangepointDetector(mode={self.config.mode!r}, "
            f"ports={len(self._series)})"
        )
