"""Pluggable congestion detectors for the forwarding engine.

The paper deliberately leaves the congestion definition open: "MIFO does
not specify how to identify the congestion on border routers.  It is an
open to different congestion definitions.  Throughout this paper, we
simply denote the queuing ratio of output ports as the congestion signal"
(Section II-A).  This module provides that default plus two alternatives,
all satisfying one protocol so :class:`repro.mifo.engine.MifoEngine` can
swap them freely:

* :class:`QueuingRatioDetector` — the paper's signal: tx-queue occupancy
  above a threshold;
* :class:`UtilizationDetector` — smoothed link utilization above a
  threshold (what the daemon's measurement windows see);
* :class:`HybridDetector` — either signal fires (queue catches bursts,
  utilization catches sustained load below the queue knee).
"""

from __future__ import annotations

import typing

from .. import telemetry as tm

if typing.TYPE_CHECKING:  # pragma: no cover
    from ..dataplane.port import Port

__all__ = [
    "CongestionDetector",
    "QueuingRatioDetector",
    "UtilizationDetector",
    "HybridDetector",
]


class CongestionDetector(typing.Protocol):
    """Anything callable as ``detector(port) -> bool``."""

    def __call__(self, port: "Port") -> bool: ...  # pragma: no cover


class QueuingRatioDetector:
    """The paper's default: output-port queuing ratio >= threshold."""

    __slots__ = ("threshold",)

    def __init__(self, threshold: float = 0.8) -> None:
        if not 0.0 < threshold <= 1.0:
            raise ValueError(f"threshold {threshold} outside (0, 1]")
        self.threshold = threshold

    def __call__(self, port: "Port") -> bool:
        if port.queuing_ratio >= self.threshold:
            tm.inc("mifo.congestion_signals")
            return True
        return False

    def __repr__(self) -> str:
        return f"QueuingRatioDetector({self.threshold})"


class UtilizationDetector:
    """Smoothed-utilization signal (needs the daemon sampling the port)."""

    __slots__ = ("threshold",)

    def __init__(self, threshold: float = 0.9) -> None:
        if not 0.0 < threshold <= 1.0:
            raise ValueError(f"threshold {threshold} outside (0, 1]")
        self.threshold = threshold

    def __call__(self, port: "Port") -> bool:
        if port.link is None:
            return False
        if port.spare_capacity(0.0) <= (1.0 - self.threshold) * port.link.rate_bps:
            tm.inc("mifo.congestion_signals")
            return True
        return False

    def __repr__(self) -> str:
        return f"UtilizationDetector({self.threshold})"


class HybridDetector:
    """Fires when either the queue or the utilization signal fires."""

    __slots__ = ("queue", "utilization")

    def __init__(
        self, queue_threshold: float = 0.8, utilization_threshold: float = 0.95
    ) -> None:
        self.queue = QueuingRatioDetector(queue_threshold)
        self.utilization = UtilizationDetector(utilization_threshold)

    def __call__(self, port: "Port") -> bool:
        return self.queue(port) or self.utilization(port)

    def __repr__(self) -> str:
        return f"HybridDetector({self.queue.threshold}, {self.utilization.threshold})"
