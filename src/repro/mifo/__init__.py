"""MIFO — the paper's contribution (system S3 in DESIGN.md).

* :mod:`~repro.mifo.tag` — the one-bit valley-free Tag-Check (Eq. 3),
* :mod:`~repro.mifo.engine` — Algorithm 1 as a pluggable packet-level
  forwarding engine (plus the plain-BGP baseline engine),
* :mod:`~repro.mifo.daemon` — link monitoring + greedy alt-port updates,
* :mod:`~repro.mifo.deflection` — the AS-level deflection walk used by the
  fluid simulator and the path-diversity counter.
"""

from .carrier import (
    IpOptionCarrier,
    MplsLabelCarrier,
    ReservedBitCarrier,
)
from .congestion import (
    HybridDetector,
    QueuingRatioDetector,
    UtilizationDetector,
)
from .daemon import AltCandidate, MifoDaemon
from .deflection import MifoPathBuilder, PathOutcome
from .engine import MifoEngine, MifoEngineConfig, bgp_engine
from .tag import check_bit, tag_for_upstream, transit_allowed

__all__ = [
    "check_bit",
    "tag_for_upstream",
    "transit_allowed",
    "MifoEngine",
    "MifoEngineConfig",
    "bgp_engine",
    "MifoDaemon",
    "AltCandidate",
    "MifoPathBuilder",
    "PathOutcome",
    "QueuingRatioDetector",
    "UtilizationDetector",
    "HybridDetector",
    "ReservedBitCarrier",
    "MplsLabelCarrier",
    "IpOptionCarrier",
]
