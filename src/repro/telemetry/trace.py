"""Structured event trace: JSONL export, schema validation, summaries.

Every event is one flat JSON object per line.  The schema below is the
single source of truth; ``docs/trace.schema.json`` is its checked-in copy
(``tests/telemetry/test_trace.py`` asserts they stay identical) so CI and
external consumers can validate traces without importing this package.

Validation implements the JSON-Schema subset the trace schema actually
uses (``type``, ``required``, ``properties``, ``enum``,
``additionalProperties``) rather than depending on a ``jsonschema``
package the runtime image may not carry.

Event kinds:

``deflection``
    One AS-level deflection decision (``repro.mifo.deflection``): the
    deciding AS, its congested default next hop, the chosen alternative,
    the spare capacity that won it, and how the packet entered the AS.
``tagcheck_drop``
    Tag-Check refused every candidate (AS level) or dropped a deflected
    packet (packet level) — the valley-free guard firing.
``path_switch``
    A mid-flow reroute in the fluid simulator (deflect or resume).
``encap``
    An IP-in-IP encapsulation toward an iBGP peer (packet engine).
``scenario_event``
    One timeline event processed by the dynamic-scenario engine
    (``repro.scenario``): what happened, what it hit, how many
    destinations went dirty and flows moved.
``solver_stats``
    End-of-run summary of one fluid simulation's max-min solver
    (``repro.flowsim``): which solver ran, the progressive-filling rounds
    it executed, and — for the incremental solver — how much work the
    path pool and the warm-start memo avoided.
``rtt_sample``
    One per-flow path RTT observation (``repro.measure.rtt``), taken
    once per epoch by the scenario engine's measurement pass or per
    control interval by the fluid simulator.
``changepoint``
    A confirmed RTT regime shift on one flow's series
    (``repro.measure.changepoint``): when the shift was detected
    (``epoch``), when the detector estimates it happened (``cp_epoch``),
    and its direction.
``batch_flush``
    The streaming service applied a coalesced batch of buffered ticks as
    one engine epoch (``repro.service.session``): how many stream events
    the flush covered (``batched``), the epoch they landed in, and the
    stream clock at flush time.
"""

from __future__ import annotations

import json
import os
import pathlib
from collections import Counter
from collections.abc import Iterable, Sequence

from .core import EventValue

__all__ = [
    "TRACE_SCHEMA",
    "read_jsonl",
    "summarize",
    "validate_event",
    "validate_events",
    "write_jsonl",
]

#: The JSONL trace schema (mirrored at ``docs/trace.schema.json``).
TRACE_SCHEMA: dict[str, object] = {
    "$schema": "http://json-schema.org/draft-07/schema#",
    "title": "MIFO telemetry trace event",
    "description": (
        "One structured pipeline event per JSONL line, as emitted by "
        "`python -m repro run --trace-out` (repro.telemetry.trace)."
    ),
    "type": "object",
    "required": ["kind", "seq"],
    "additionalProperties": False,
    "properties": {
        "kind": {
            "type": "string",
            "enum": [
                "deflection",
                "tagcheck_drop",
                "path_switch",
                "encap",
                "scenario_event",
                "solver_stats",
                "rtt_sample",
                "changepoint",
                "batch_flush",
            ],
        },
        "seq": {"type": "integer"},
        "phase": {"type": "string"},
        "as": {"type": "integer"},
        "dst": {"type": "integer"},
        "src": {"type": "integer"},
        "flow": {"type": "integer"},
        "upstream": {"type": ["integer", "null"]},
        "default_nh": {"type": "integer"},
        "chosen": {"type": "integer"},
        "cause": {
            "type": "string",
            "enum": [
                "congested_link",
                "deflected_to_us",
                "resume",
                "tag_check",
                "rtt_alarm",
            ],
        },
        "spare_bps": {"type": "number"},
        "candidates": {"type": "integer"},
        "tagcheck_filtered": {"type": "integer"},
        "tag_bit": {"type": "boolean"},
        "on_alt": {"type": "boolean"},
        "time_s": {"type": "number"},
        "epoch": {
            "type": "integer",
            "description": (
                "Scenario-engine epoch (timeline event index) the event "
                "was recorded under; the end-of-run trace gate skips "
                "epoch-tagged deflections because each epoch is "
                "cross-checked against its own FIB state."
            ),
        },
        "event": {
            "type": "string",
            "description": (
                "Scenario event kind (link_fail, link_recover, "
                "capacity_scale, traffic_ramp, flash_crowd, "
                "congestion_onset, measure_tick, initial)."
            ),
        },
        "target": {"type": "string"},
        "dirty": {"type": "integer"},
        "rerouted": {"type": "integer"},
        "unroutable": {"type": "integer"},
        "router": {"type": "string"},
        "peer": {"type": "string"},
        "solver": {
            "type": "string",
            "enum": ["incremental", "full"],
            "description": "Fluid max-min solver mode of a solver_stats event.",
        },
        "maxmin_iterations": {
            "type": "integer",
            "description": (
                "Progressive-filling rounds the run actually executed; the "
                "incremental solver's count never exceeds the full "
                "solver's on the same event stream (memo hits skip rounds)."
            ),
        },
        "pool_hits": {"type": "integer"},
        "cols_reused": {"type": "integer"},
        "warm_rounds_saved": {"type": "integer"},
        "rtt_ms": {
            "type": "number",
            "description": "Observed path round-trip time, milliseconds.",
        },
        "cp_epoch": {
            "type": "integer",
            "description": (
                "Detector's estimate of the epoch the RTT regime shift "
                "happened (first post-shift sample); `epoch` is when it "
                "was confirmed, so `epoch - cp_epoch` is the detection "
                "delay."
            ),
        },
        "direction": {
            "type": "string",
            "enum": ["up", "down"],
            "description": "Sign of a changepoint's level shift.",
        },
        "detector": {
            "type": "string",
            "enum": ["threshold", "changepoint"],
            "description": (
                "Which measurement-driven detector produced an "
                "rtt_sample/changepoint event (the oracle signal emits "
                "neither)."
            ),
        },
        "batched": {
            "type": "integer",
            "description": (
                "Stream events a batch_flush coalesced into one engine "
                "epoch (always >= 1; the unbatched path emits no flush "
                "events at all)."
            ),
        },
    },
}

_TYPE_CHECKS = {
    "object": lambda v: isinstance(v, dict),
    "array": lambda v: isinstance(v, list),
    "string": lambda v: isinstance(v, str),
    "integer": lambda v: isinstance(v, int) and not isinstance(v, bool),
    "number": lambda v: isinstance(v, (int, float)) and not isinstance(v, bool),
    "boolean": lambda v: isinstance(v, bool),
    "null": lambda v: v is None,
}


def _type_ok(value: object, expected: object) -> bool:
    names = expected if isinstance(expected, list) else [expected]
    return any(
        isinstance(n, str) and n in _TYPE_CHECKS and _TYPE_CHECKS[n](value)
        for n in names
    )


def validate_event(
    event: object, schema: dict[str, object] | None = None
) -> list[str]:
    """Problems (empty = valid) of one event against the trace schema."""
    schema = schema if schema is not None else TRACE_SCHEMA
    problems: list[str] = []
    if not _type_ok(event, schema.get("type", "object")):
        return [f"event is not an object: {event!r}"]
    assert isinstance(event, dict)
    required = schema.get("required", [])
    if isinstance(required, list):
        for key in required:
            if key not in event:
                problems.append(f"missing required field {key!r}")
    properties = schema.get("properties", {})
    if not isinstance(properties, dict):
        properties = {}
    for key, value in event.items():
        sub = properties.get(key)
        if sub is None:
            if schema.get("additionalProperties", True) is False:
                problems.append(f"unknown field {key!r}")
            continue
        if not isinstance(sub, dict):
            continue
        if "type" in sub and not _type_ok(value, sub["type"]):
            problems.append(
                f"field {key!r}: {value!r} is not of type {sub['type']}"
            )
        enum = sub.get("enum")
        if isinstance(enum, list) and value not in enum:
            problems.append(f"field {key!r}: {value!r} not in {enum}")
    return problems


def validate_events(
    events: Iterable[object], schema: dict[str, object] | None = None
) -> list[str]:
    """Flat problem list over a whole trace, prefixed with event indices."""
    problems: list[str] = []
    for i, ev in enumerate(events):
        problems.extend(f"event {i}: {p}" for p in validate_event(ev, schema))
    return problems


def write_jsonl(
    events: Iterable[dict[str, EventValue]], path: str | os.PathLike[str]
) -> int:
    """Write events one-per-line; returns the number written."""
    p = pathlib.Path(path)
    if p.parent != pathlib.Path("."):
        p.parent.mkdir(parents=True, exist_ok=True)
    n = 0
    with p.open("w", encoding="utf-8") as fh:
        for ev in events:
            fh.write(json.dumps(ev, sort_keys=True, default=str))
            fh.write("\n")
            n += 1
    return n


def read_jsonl(path: str | os.PathLike[str]) -> list[dict[str, EventValue]]:
    """Parse a JSONL trace file (blank lines ignored)."""
    events: list[dict[str, EventValue]] = []
    with pathlib.Path(path).open("r", encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                obj = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ValueError(f"{path}:{lineno}: not valid JSON: {exc}") from None
            if not isinstance(obj, dict):
                raise ValueError(f"{path}:{lineno}: event is not a JSON object")
            events.append(obj)
    return events


def summarize(
    events: Sequence[dict[str, EventValue]], *, top: int = 5
) -> dict[str, object]:
    """Aggregate a trace into the ``trace summarize`` report payload."""
    by_kind = Counter(str(e.get("kind")) for e in events)
    causes = Counter(
        str(e["cause"]) for e in events if isinstance(e.get("cause"), str)
    )
    deflectors = Counter(
        int(e["as"])
        for e in events
        if e.get("kind") == "deflection" and isinstance(e.get("as"), int)
    )
    dests = Counter(
        int(e["dst"]) for e in events if isinstance(e.get("dst"), int)
    )
    spares = [
        float(e["spare_bps"])
        for e in events
        if isinstance(e.get("spare_bps"), (int, float))
    ]
    solvers: dict[str, dict[str, int]] = {}
    for e in events:
        if e.get("kind") != "solver_stats" or not isinstance(
            e.get("solver"), str
        ):
            continue
        agg = solvers.setdefault(
            str(e["solver"]),
            {
                "runs": 0,
                "maxmin_iterations": 0,
                "pool_hits": 0,
                "cols_reused": 0,
                "warm_rounds_saved": 0,
            },
        )
        agg["runs"] += 1
        for field in (
            "maxmin_iterations",
            "pool_hits",
            "cols_reused",
            "warm_rounds_saved",
        ):
            value = e.get(field)
            if isinstance(value, int):
                agg[field] += value
    # per-detector digest: [samples, detections, delay_sum, delays]
    detectors: dict[str, list[int]] = {}
    detector_series: dict[str, set[int]] = {}
    for e in events:
        name = e.get("detector")
        if not isinstance(name, str):
            continue
        agg = detectors.setdefault(name, [0, 0, 0, 0])
        flows = detector_series.setdefault(name, set())
        kind = e.get("kind")
        if kind == "rtt_sample":
            agg[0] += 1
            if isinstance(e.get("flow"), int):
                flows.add(int(e["flow"]))
        elif kind == "changepoint":
            agg[1] += 1
            epoch, cp_epoch = e.get("epoch"), e.get("cp_epoch")
            if isinstance(epoch, int) and isinstance(cp_epoch, int):
                agg[2] += epoch - cp_epoch
                agg[3] += 1
    flushes = [
        int(e["batched"])
        for e in events
        if e.get("kind") == "batch_flush" and isinstance(e.get("batched"), int)
    ]
    summary: dict[str, object] = {
        "events": len(events),
        "by_kind": dict(sorted(by_kind.items())),
        "by_cause": dict(sorted(causes.items())),
        "top_deflecting_ases": deflectors.most_common(top),
        "top_destinations": dests.most_common(top),
    }
    if flushes:
        summary["batch_stats"] = {
            "flushes": len(flushes),
            "batched_events": sum(flushes),
            "mean_batch": sum(flushes) / len(flushes),
            "max_batch": max(flushes),
        }
    if solvers:
        summary["solver_stats"] = dict(sorted(solvers.items()))
    if detectors:
        summary["detector_stats"] = {
            name: {
                "series": len(detector_series[name]),
                "samples": agg[0],
                "detections": agg[1],
                "mean_detection_delay": agg[2] / agg[3] if agg[3] else 0.0,
            }
            for name, agg in sorted(detectors.items())
        }
    if spares:
        summary["spare_bps"] = {
            "min": min(spares),
            "mean": sum(spares) / len(spares),
            "max": max(spares),
        }
    seqs = [int(e["seq"]) for e in events if isinstance(e.get("seq"), int)]
    if seqs:
        summary["seq_range"] = [min(seqs), max(seqs)]
    return summary


def render_summary(summary: dict[str, object]) -> str:
    """Human-readable form of :func:`summarize` output."""
    lines = [f"trace: {summary['events']} event(s)"]
    by_kind = summary.get("by_kind")
    if isinstance(by_kind, dict) and by_kind:
        lines.append("  by kind:")
        for kind, n in by_kind.items():
            lines.append(f"    {kind:<15} {n}")
    by_cause = summary.get("by_cause")
    if isinstance(by_cause, dict) and by_cause:
        lines.append("  by cause:")
        for cause, n in by_cause.items():
            lines.append(f"    {cause:<15} {n}")
    tops = summary.get("top_deflecting_ases")
    if isinstance(tops, list) and tops:
        pretty = ", ".join(f"AS{a} (x{n})" for a, n in tops)
        lines.append(f"  top deflecting ASes: {pretty}")
    solver_stats = summary.get("solver_stats")
    if isinstance(solver_stats, dict) and solver_stats:
        lines.append("  max-min solver:")
        for mode, agg in solver_stats.items():
            lines.append(
                f"    {mode:<12} {agg['maxmin_iterations']} filling round(s) "
                f"over {agg['runs']} run(s); pool hits {agg['pool_hits']}, "
                f"columns reused {agg['cols_reused']}, "
                f"rounds memoized away {agg['warm_rounds_saved']}"
            )
    batch_stats = summary.get("batch_stats")
    if isinstance(batch_stats, dict):
        lines.append(
            f"  batch flushes: {batch_stats['flushes']} covering "
            f"{batch_stats['batched_events']} event(s) "
            f"(mean {batch_stats['mean_batch']:.1f}, "
            f"max {batch_stats['max_batch']})"
        )
    detector_stats = summary.get("detector_stats")
    if isinstance(detector_stats, dict) and detector_stats:
        lines.append("  rtt detectors:")
        for name, agg in detector_stats.items():
            lines.append(
                f"    {name:<12} {agg['detections']} detection(s) over "
                f"{agg['series']} series ({agg['samples']} samples); "
                f"mean detection delay {agg['mean_detection_delay']:.1f} "
                "epoch(s)"
            )
    spare = summary.get("spare_bps")
    if isinstance(spare, dict):
        lines.append(
            f"  spare capacity at deflection: min {spare['min']:.3g} bps, "
            f"mean {spare['mean']:.3g} bps, max {spare['max']:.3g} bps"
        )
    return "\n".join(lines)
