"""Machine-readable perf reports: the ``results/BENCH_*.json`` trajectory.

Benchmarks call :func:`append_bench_record` so every run leaves one
timestamped record behind; the file is a JSON list that grows in place,
giving the repo a queryable performance trajectory instead of throwaway
terminal output.
"""

from __future__ import annotations

import json
import os
import pathlib
import time

__all__ = ["append_bench_record", "read_bench_records"]


def read_bench_records(path: str | os.PathLike[str]) -> list[dict[str, object]]:
    """Existing records at ``path`` (empty list if absent or unreadable)."""
    p = pathlib.Path(path)
    if not p.exists():
        return []
    try:
        data = json.loads(p.read_text(encoding="utf-8"))
    except (json.JSONDecodeError, OSError):
        return []
    if not isinstance(data, list):
        return []
    return [r for r in data if isinstance(r, dict)]


def append_bench_record(
    path: str | os.PathLike[str], record: dict[str, object]
) -> list[dict[str, object]]:
    """Append one record (stamped with ``wall_time_s``) to a JSON list file.

    Returns the full list after the append.  Creates parent directories
    as needed; a corrupt existing file is replaced rather than crashing
    the benchmark that reports into it.
    """
    p = pathlib.Path(path)
    p.parent.mkdir(parents=True, exist_ok=True)
    records = read_bench_records(p)
    stamped = dict(record)
    stamped.setdefault("wall_time_s", time.time())
    records.append(stamped)
    p.write_text(json.dumps(records, indent=2, sort_keys=True) + "\n", encoding="utf-8")
    return records
