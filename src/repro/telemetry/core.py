"""Instrument registry, mergeable snapshots, and the module-level sink.

Design constraints (ISSUE 3 tentpole):

* **Near-zero disabled cost.**  The process-wide sink is one module
  global, ``_active``; every convenience function and every instrumented
  call site in the pipeline guards on ``_active is None`` — a single
  load + branch, no string formatting, no allocation.  Disabled spans
  return one shared no-op handle.
* **Mergeable snapshots.**  Fork workers cannot mutate the parent's
  registry, so each ships back a :class:`TelemetrySnapshot` delta;
  :meth:`TelemetrySnapshot.merge` is associative (and, except for event
  concatenation order, commutative), which
  ``tests/telemetry/test_merge.py`` property-tests.  The parent absorbs
  deltas via :meth:`Telemetry.absorb`.
* **Only this module touches the clock.**  ``time.perf_counter`` lives
  here (and in :mod:`repro.telemetry.perf`); everywhere else in
  ``src/repro`` the ``MF004`` lint rule forbids direct timer calls so
  every measured interval is span-mergeable.
"""

from __future__ import annotations

import bisect
import contextlib
import dataclasses
import time
from collections import deque
from collections.abc import Iterator

__all__ = [
    "DEFAULT_TRACE_CAPACITY",
    "EventValue",
    "SpanHandle",
    "Stopwatch",
    "Telemetry",
    "TelemetrySession",
    "TelemetrySnapshot",
    "activate",
    "active",
    "event",
    "inc",
    "observe",
    "set_gauge",
    "span",
    "telemetry_session",
]

#: JSON-scalar values an event field may carry.
EventValue = int | float | str | bool | None

#: default ring-buffer capacity for the structured event trace.
DEFAULT_TRACE_CAPACITY = 10_000

#: default histogram bucket upper bounds (values above the last bound land
#: in the overflow bucket); chosen for AS-hop path lengths but serviceable
#: for any small-count metric.
DEFAULT_BOUNDS: tuple[float, ...] = (1.0, 2.0, 4.0, 6.0, 8.0, 12.0, 16.0, 24.0)


class Stopwatch:
    """The sanctioned wall-clock for code outside this package.

    ``MF004`` forbids direct ``time.time()`` / ``perf_counter()`` calls in
    ``src/repro``; ad-hoc elapsed-time needs (CLI progress lines, the
    verifier's ``elapsed_s`` field) use a ``Stopwatch`` instead so every
    timing in the codebase is attributable to one clock implementation.
    """

    __slots__ = ("_t0",)

    def __init__(self) -> None:
        self._t0 = time.perf_counter()

    @property
    def elapsed(self) -> float:
        """Seconds since construction (or the last :meth:`restart`)."""
        return time.perf_counter() - self._t0

    def restart(self) -> None:
        """Reset the reference instant to now."""
        self._t0 = time.perf_counter()

    @staticmethod
    def wall_time() -> float:
        """Seconds since the epoch — for report timestamps only."""
        return time.time()


class SpanHandle:
    """No-op span — the shared handle every disabled ``span()`` returns."""

    __slots__ = ()

    def __enter__(self) -> "SpanHandle":
        return self

    def __exit__(self, *exc: object) -> None:
        return None


_NOOP_SPAN = SpanHandle()


class _Span(SpanHandle):
    """Live span: aggregates elapsed wall-clock into its telemetry's table."""

    __slots__ = ("_telemetry", "_name", "_t0")

    def __init__(self, telemetry: "Telemetry", name: str) -> None:
        self._telemetry = telemetry
        self._name = name
        self._t0 = 0.0

    def __enter__(self) -> "_Span":
        self._telemetry._stack.append(self._name)
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, *exc: object) -> None:
        dt = time.perf_counter() - self._t0
        t = self._telemetry
        stack = t._stack
        if stack and stack[-1] == self._name:
            stack.pop()
        cell = t.spans.get(self._name)
        if cell is None:
            t.spans[self._name] = [dt, 1]
        else:
            cell[0] += dt
            cell[1] += 1


@dataclasses.dataclass(frozen=True)
class TelemetrySnapshot:
    """Immutable aggregate of one telemetry registry (or a delta of two).

    The merge algebra backs the parallel-worker protocol:

    * counters and span totals/counts **add**;
    * gauges merge by **max** (associative and commutative — "last write
      wins" would depend on merge order);
    * histograms add bucket-wise (bounds must agree);
    * events **concatenate** (associative; order follows merge order,
      which the parallel engine keeps deterministic via ordered
      ``imap`` chunks).
    """

    counters: dict[str, int] = dataclasses.field(default_factory=dict)
    gauges: dict[str, float] = dataclasses.field(default_factory=dict)
    #: name -> (bucket upper bounds, per-bucket counts incl. overflow).
    histograms: dict[str, tuple[tuple[float, ...], tuple[int, ...]]] = dataclasses.field(
        default_factory=dict
    )
    #: name -> (total seconds, completion count).
    spans: dict[str, tuple[float, int]] = dataclasses.field(default_factory=dict)
    events: tuple[dict[str, EventValue], ...] = ()
    events_total: int = 0
    events_dropped: int = 0

    def merge(self, other: "TelemetrySnapshot") -> "TelemetrySnapshot":
        """Element-wise sum of two snapshots."""
        counters = dict(self.counters)
        for k, v in other.counters.items():
            counters[k] = counters.get(k, 0) + v
        gauges = dict(self.gauges)
        for k, g in other.gauges.items():
            gauges[k] = max(gauges.get(k, g), g)
        spans = dict(self.spans)
        for k, (total, count) in other.spans.items():
            mine = spans.get(k)
            spans[k] = (
                (total, count) if mine is None else (mine[0] + total, mine[1] + count)
            )
        histograms = dict(self.histograms)
        for k, (bounds, buckets) in other.histograms.items():
            mine_h = histograms.get(k)
            if mine_h is None:
                histograms[k] = (bounds, buckets)
            else:
                if mine_h[0] != bounds:
                    raise ValueError(
                        f"histogram {k!r}: bucket bounds differ across snapshots"
                    )
                histograms[k] = (
                    bounds,
                    tuple(a + b for a, b in zip(mine_h[1], buckets)),
                )
        return TelemetrySnapshot(
            counters=counters,
            gauges=gauges,
            histograms=histograms,
            spans=spans,
            events=self.events + other.events,
            events_total=self.events_total + other.events_total,
            events_dropped=self.events_dropped + other.events_dropped,
        )

    def subtract(self, base: "TelemetrySnapshot") -> "TelemetrySnapshot":
        """This snapshot minus an earlier one of the same registry.

        Gauges keep their current values (levels, not totals).  Events
        keep only those recorded after the base was taken (identified by
        their monotone ``seq``), so a delta still carries its trace.
        """
        counters = {
            k: v - base.counters.get(k, 0)
            for k, v in self.counters.items()
            if v != base.counters.get(k, 0)
        }
        spans = {}
        for k, (total, count) in self.spans.items():
            b = base.spans.get(k, (0.0, 0))
            if count != b[1] or total != b[0]:
                spans[k] = (total - b[0], count - b[1])
        histograms = {}
        for k, (bounds, buckets) in self.histograms.items():
            b_bounds, b_buckets = base.histograms.get(k, (bounds, (0,) * len(buckets)))
            if b_bounds != bounds:
                raise ValueError(f"histogram {k!r}: bucket bounds changed")
            delta = tuple(a - b for a, b in zip(buckets, b_buckets))
            if any(delta):
                histograms[k] = (bounds, delta)
        first_new = base.events_total
        events = tuple(
            e for e in self.events if isinstance(e.get("seq"), int) and e["seq"] >= first_new
        )
        return TelemetrySnapshot(
            counters=counters,
            gauges=dict(self.gauges),
            histograms=histograms,
            spans=spans,
            events=events,
            events_total=self.events_total - base.events_total,
            events_dropped=self.events_dropped - base.events_dropped,
        )

    def to_dict(self) -> dict[str, object]:
        """JSON-ready form for ``ExperimentResult.meta['telemetry']``.

        Raw events are deliberately excluded (the JSONL trace is their
        export format); only their totals ride along.
        """
        return {
            "counters": dict(sorted(self.counters.items())),
            "gauges": dict(sorted(self.gauges.items())),
            "spans": {
                name: {"total_s": total, "count": count}
                for name, (total, count) in sorted(self.spans.items())
            },
            "histograms": {
                name: {"bounds": list(bounds), "counts": list(buckets)}
                for name, (bounds, buckets) in sorted(self.histograms.items())
            },
            "events_total": self.events_total,
            "events_dropped": self.events_dropped,
        }

    def render(self) -> str:
        """Human-readable phase-timer / counter report (CLI ``--metrics``)."""
        lines = ["telemetry:"]
        if self.spans:
            lines.append("  phases:")
            width = max(len(n) for n in self.spans)
            for name, (total, count) in sorted(
                self.spans.items(), key=lambda kv: -kv[1][0]
            ):
                mean_ms = total / count * 1e3 if count else 0.0
                lines.append(
                    f"    {name:<{width}}  {total:9.3f} s  x{count:<7d} "
                    f"({mean_ms:8.3f} ms avg)"
                )
        if self.counters:
            lines.append("  counters:")
            width = max(len(n) for n in self.counters)
            for name, value in sorted(self.counters.items()):
                lines.append(f"    {name:<{width}}  {value}")
        if self.gauges:
            lines.append("  gauges:")
            width = max(len(n) for n in self.gauges)
            for name, gauge in sorted(self.gauges.items()):
                lines.append(f"    {name:<{width}}  {gauge:g}")
        for name, (bounds, buckets) in sorted(self.histograms.items()):
            lines.append(f"  histogram {name} (bounds {list(bounds)}):")
            lines.append(f"    counts {list(buckets)}")
        lines.append(
            f"  trace: {self.events_total} event(s), {self.events_dropped} dropped"
        )
        return "\n".join(lines)


#: Snapshot fields :meth:`Telemetry.absorb` never reads because the live
#: registry re-derives them (``events_dropped`` is always
#: ``events_total - len(trace)`` at the *next* snapshot).  mifocheck MC102
#: exempts these from its merge-coverage check; adding a field here
#: instead of merging it needs the same scrutiny as deleting a merge.
MERGE_DERIVED_FIELDS: tuple[str, ...] = ("events_dropped",)


class Telemetry:
    """One live instrument registry.

    Not thread-safe by design: the pipeline is single-threaded per
    process, and cross-*process* aggregation goes through snapshots.
    """

    __slots__ = (
        "counters",
        "gauges",
        "spans",
        "trace_capacity",
        "_histograms",
        "_trace",
        "_events_total",
        "_stack",
    )

    def __init__(self, *, trace_capacity: int = DEFAULT_TRACE_CAPACITY) -> None:
        if trace_capacity < 1:
            raise ValueError(f"trace_capacity must be >= 1, got {trace_capacity}")
        self.counters: dict[str, int] = {}
        self.gauges: dict[str, float] = {}
        #: name -> [bounds tuple, mutable bucket counts]
        self._histograms: dict[str, tuple[tuple[float, ...], list[int]]] = {}
        #: name -> [total seconds, completion count]
        self.spans: dict[str, list[float | int]] = {}
        self.trace_capacity = trace_capacity
        self._trace: deque[dict[str, EventValue]] = deque(maxlen=trace_capacity)
        self._events_total = 0
        self._stack: list[str] = []

    # -- instruments ----------------------------------------------------
    def inc(self, name: str, n: int = 1) -> None:
        """Add ``n`` to counter ``name``."""
        self.counters[name] = self.counters.get(name, 0) + n

    def set_gauge(self, name: str, value: float) -> None:
        """Set gauge ``name`` to ``value``."""
        self.gauges[name] = float(value)

    def observe(
        self, name: str, value: float, *, bounds: tuple[float, ...] = DEFAULT_BOUNDS
    ) -> None:
        """Record one sample into the named histogram.

        The first observation fixes the bucket bounds; later calls with
        different ``bounds`` raise (bounds must agree for merging).
        """
        cell = self._histograms.get(name)
        if cell is None:
            cell = (bounds, [0] * (len(bounds) + 1))
            self._histograms[name] = cell
        elif cell[0] != bounds:
            raise ValueError(f"histogram {name!r}: inconsistent bucket bounds")
        cell[1][bisect.bisect_left(cell[0], value)] += 1

    def span(self, name: str) -> _Span:
        """Context manager timing the phase ``name``."""
        return _Span(self, name)

    def current_phase(self) -> str | None:
        """Innermost open span name (annotates trace events)."""
        return self._stack[-1] if self._stack else None

    @property
    def events_total(self) -> int:
        """Events recorded so far (monotone; equals the next ``seq``).

        Callers use it as a *mark*: events recorded after the mark are
        exactly those with ``seq >= mark`` — how the scenario engine
        scopes its per-epoch trace cross-check."""
        return self._events_total

    def event(self, kind: str, /, **fields: EventValue) -> None:
        """Append one structured event to the bounded ring buffer."""
        record: dict[str, EventValue] = {"kind": kind, "seq": self._events_total}
        phase = self.current_phase()
        if phase is not None:
            record["phase"] = phase
        record.update(fields)
        self._trace.append(record)
        self._events_total += 1

    # -- snapshot protocol ----------------------------------------------
    def trace_events(self) -> tuple[dict[str, EventValue], ...]:
        """The retained events, oldest first."""
        return tuple(self._trace)

    def snapshot(self) -> TelemetrySnapshot:
        """An immutable copy of all current measurements."""
        return TelemetrySnapshot(
            counters=dict(self.counters),
            gauges=dict(self.gauges),
            histograms={
                name: (bounds, tuple(buckets))
                for name, (bounds, buckets) in self._histograms.items()
            },
            spans={
                name: (float(cell[0]), int(cell[1]))
                for name, cell in self.spans.items()
            },
            events=self.trace_events(),
            events_total=self._events_total,
            events_dropped=self._events_total - len(self._trace),
        )

    def absorb(self, snap: TelemetrySnapshot) -> None:
        """Merge a worker's snapshot delta into this live registry."""
        for k, v in snap.counters.items():
            self.counters[k] = self.counters.get(k, 0) + v
        for k, g in snap.gauges.items():
            self.gauges[k] = max(self.gauges.get(k, g), g)
        for k, (total, count) in snap.spans.items():
            cell = self.spans.get(k)
            if cell is None:
                self.spans[k] = [total, count]
            else:
                cell[0] += total
                cell[1] += count
        for k, (bounds, buckets) in snap.histograms.items():
            mine = self._histograms.get(k)
            if mine is None:
                self._histograms[k] = (bounds, list(buckets))
            else:
                if mine[0] != bounds:
                    raise ValueError(f"histogram {k!r}: bucket bounds differ")
                for i, b in enumerate(buckets):
                    mine[1][i] += b
        dropped_here = 0
        for e in snap.events:
            rebased = dict(e)
            seq = rebased.get("seq")
            rebased["seq"] = self._events_total + (seq if isinstance(seq, int) else 0)
            if len(self._trace) == self.trace_capacity:
                dropped_here += 1
            self._trace.append(rebased)
        self._events_total += snap.events_total
        # Events the *worker* already dropped stay dropped; events this
        # absorb pushed out of our own ring are accounted implicitly by
        # events_total - len(_trace) in the next snapshot.
        _ = dropped_here


# ----------------------------------------------------------------------
# the process-wide sink
# ----------------------------------------------------------------------

_active: Telemetry | None = None


def active() -> Telemetry | None:
    """The process-wide registry, or None when telemetry is disabled."""
    return _active


def activate(telemetry: Telemetry | None) -> None:
    """Install (or, with None, remove) the process-wide registry."""
    global _active
    _active = telemetry


def inc(name: str, n: int = 1) -> None:
    """Add ``n`` to a counter on the active telemetry, if any."""
    t = _active
    if t is not None:
        t.inc(name, n)


def set_gauge(name: str, value: float) -> None:
    """Set a gauge on the active telemetry, if any."""
    t = _active
    if t is not None:
        t.set_gauge(name, value)


def observe(
    name: str, value: float, *, bounds: tuple[float, ...] = DEFAULT_BOUNDS
) -> None:
    """Record a histogram sample on the active telemetry."""
    t = _active
    if t is not None:
        t.observe(name, value, bounds=bounds)


def span(name: str) -> SpanHandle:
    """Time a phase on the active telemetry (no-op when off)."""
    t = _active
    if t is None:
        return _NOOP_SPAN
    return t.span(name)


def event(kind: str, /, **fields: EventValue) -> None:
    """Record a trace event on the active telemetry, if any."""
    t = _active
    if t is not None:
        t.event(kind, **fields)


class TelemetrySession:
    """Handle a ``telemetry_session`` yields: the registry + a base mark.

    ``delta()`` / ``meta()`` report only what happened *inside* the
    session, so an already-warm registry (CLI ``run all`` reusing one
    :class:`Telemetry` across experiments) still attributes counters to
    the right experiment.
    """

    __slots__ = ("telemetry", "_base")

    def __init__(self, telemetry: Telemetry) -> None:
        self.telemetry = telemetry
        self._base = telemetry.snapshot()

    def delta(self) -> TelemetrySnapshot:
        """Measurements accumulated since construction."""
        return self.telemetry.snapshot().subtract(self._base)

    def meta(self) -> dict[str, object]:
        """The delta in ``ExperimentResult.meta['telemetry']`` form."""
        return self.delta().to_dict()


@contextlib.contextmanager
def telemetry_session(
    spec: "Telemetry | bool | None",
) -> Iterator[TelemetrySession | None]:
    """Scoped activation used by every experiment's ``run(telemetry=...)``.

    ``None``/``False`` — disabled, yields None (and leaves any
    already-active registry untouched so nested runs keep recording);
    ``True`` — activate a fresh :class:`Telemetry` for the scope;
    a :class:`Telemetry` — activate that instance (idempotent when it is
    already the active one).  The previous sink is restored on exit.
    """
    if spec is None or spec is False:
        yield None
        return
    t = spec if isinstance(spec, Telemetry) else Telemetry()
    prev = active()
    activate(t)
    try:
        yield TelemetrySession(t)
    finally:
        activate(prev)
