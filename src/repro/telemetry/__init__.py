"""``repro.telemetry`` — process-wide, opt-in instrumentation.

The MIFO pipeline makes thousands of small decisions per run (deflections,
Tag-Check drops, encapsulations, cache hits, max-min filling rounds); the
paper's whole evaluation (§V) is built from exactly these events.  This
package makes them first-class:

* **Counters / gauges / histograms** — typed numeric instruments
  (``mifo.deflections``, ``cache.hits``, ``flowsim.maxmin_iterations``…);
* **Phase timers** — nested wall-clock spans (``topology.build`` →
  ``bgp.propagate`` → ``mifo.deflect`` → ``flowsim.solve`` →
  ``metrics.compute``) that aggregate across
  :class:`~repro.bgp.parallel.ParallelRoutingEngine` fork workers via the
  mergeable :class:`TelemetrySnapshot` protocol;
* **Structured event trace** — a bounded ring buffer of deflection /
  Tag-Check / path-switch events, exportable as JSONL
  (:mod:`repro.telemetry.trace`) and consumable by the static verifier.

Telemetry is **off by default** and the disabled path is near-zero cost:
every instrumented call site guards on a single module-global ``None``
check (no string formatting, no dict allocation) —
``benchmarks/test_micro_telemetry.py`` proves the overhead on the
array-backend routing hot path stays below 2%.

All wall-clock reads in ``src/repro`` must go through this package
(:class:`Stopwatch` / the span API) so parallel merge and the ``MF004``
lint rule stay sound.
"""

from .core import (
    DEFAULT_TRACE_CAPACITY,
    EventValue,
    Stopwatch,
    Telemetry,
    TelemetrySession,
    TelemetrySnapshot,
    activate,
    active,
    event,
    inc,
    observe,
    set_gauge,
    span,
    telemetry_session,
)

__all__ = [
    "DEFAULT_TRACE_CAPACITY",
    "EventValue",
    "Stopwatch",
    "Telemetry",
    "TelemetrySession",
    "TelemetrySnapshot",
    "activate",
    "active",
    "event",
    "inc",
    "observe",
    "set_gauge",
    "span",
    "telemetry_session",
]
