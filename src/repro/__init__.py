"""repro — a full reproduction of *MIFO: Multi-Path Interdomain Forwarding*
(Zhu et al., ICPP 2015).

MIFO lets AS border routers deflect traffic from a congested default BGP
path onto alternatives already present in the local BGP RIB, entirely on
the data plane: a one-bit valley-free Tag-Check provably prevents
forwarding loops, IP-in-IP encapsulation between iBGP peers prevents
intra-AS deflection cycles, and a greedy monitor of direct inter-AS link
capacity picks the best alternative.

Package map (see DESIGN.md for the full inventory):

====================  =====================================================
``repro.topology``    AS graphs, business relationships, synthetic Internet
``repro.bgp``         valley-free BGP: fast 3-stage + message-level models
``repro.mifo``        the contribution: Tag-Check, engine, daemon, deflection
``repro.miro``        MIRO baseline (strict policy)
``repro.flowsim``     fluid AS-level simulator (max-min fair sharing)
``repro.dataplane``   packet-level DES: routers, queues, TCP Reno
``repro.traffic``     uniform & power-law traffic matrices
``repro.netbuild``    AS graph -> packet network materialization
``repro.metrics``     CDFs, path diversity, offload, stability
``repro.experiments`` one module per paper table/figure + CLI
====================  =====================================================

Quickstart::

    from repro.topology import generate_topology, TopologyConfig
    from repro.bgp import RoutingCache
    from repro.mifo import MifoPathBuilder
    from repro.flowsim import FluidSimulator, MifoProvider
    from repro.traffic import TrafficConfig, uniform_matrix

    graph = generate_topology(TopologyConfig(n_ases=1000))
    routing = RoutingCache(graph)
    builder = MifoPathBuilder(graph, routing, frozenset(graph.nodes()))
    sim = FluidSimulator(graph, MifoProvider(builder))
    result = sim.run(uniform_matrix(graph, TrafficConfig(n_flows=500)))
    print(result.throughputs_bps().mean() / 1e6, "Mbps mean")
"""

from . import (
    analysis,
    bgp,
    dataplane,
    errors,
    flowsim,
    metrics,
    mifo,
    miro,
    netbuild,
    topology,
    traffic,
)

__version__ = "1.0.0"
__paper__ = "MIFO: Multi-Path Interdomain Forwarding (ICPP 2015)"

__all__ = [
    "analysis",
    "bgp",
    "dataplane",
    "errors",
    "flowsim",
    "metrics",
    "mifo",
    "miro",
    "netbuild",
    "topology",
    "traffic",
    "__version__",
    "__paper__",
]
