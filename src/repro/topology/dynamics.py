"""Derived topologies for dynamic scenarios (link failure / recovery).

Every consumer of an :class:`~repro.topology.asgraph.ASGraph` relies on the
freeze contract: once routing code sees a graph it never mutates.  Dynamic
scenarios therefore never edit a graph in place — a link event produces a
*new* frozen graph sharing nothing mutable with the old one, and the
scenario engine re-points its state at the derivative.

Two properties matter for incremental recomputation downstream:

* **The node set is preserved.**  Removing the last link of an AS leaves
  the AS in the graph (isolated, hence unreachable) instead of dropping
  it.  This keeps the dense CSR index mapping identical across the whole
  event timeline, which is what lets
  :meth:`~repro.bgp.array_routing.ArrayDestinationRouting.rebind` carry a
  converged state tuple from one epoch's graph to the next.
* **Invariants are re-validated.**  The derivative is built through the
  ordinary mutator API and :meth:`~repro.topology.asgraph.ASGraph.freeze`,
  so a link addition that would create a provider-customer cycle raises
  :class:`~repro.errors.TopologyError` instead of corrupting routing.
"""

from __future__ import annotations

from ..errors import TopologyError
from .asgraph import ASGraph
from .relationships import Relationship

__all__ = ["with_link", "without_link"]


def _copy_skeleton(graph: ASGraph, *, skip: tuple[int, int] | None = None) -> ASGraph:
    """A mutable copy of ``graph`` (every node, every link except ``skip``)."""
    g = ASGraph()
    for asn in graph.nodes():
        g.add_as(asn)
    for u, v, rel in graph.links():
        if skip is not None and (u, v) == skip:
            continue
        # links() orders endpoints u < v, so rel may be CUSTOMER (u is
        # the provider), PROVIDER (v is), or PEER.
        if rel is Relationship.CUSTOMER:
            g.add_p2c(u, v)
        elif rel is Relationship.PROVIDER:
            g.add_p2c(v, u)
        else:
            g.add_peering(u, v)
    return g


def without_link(graph: ASGraph, u: int, v: int) -> ASGraph:
    """A new frozen graph equal to ``graph`` minus the link ``u``–``v``.

    The node set is preserved even if an endpoint becomes isolated.
    Raises :class:`~repro.errors.TopologyError` if the link does not exist.
    """
    if not graph.are_adjacent(u, v):
        raise TopologyError(f"no link between AS {u} and AS {v} to remove")
    lo, hi = (u, v) if u <= v else (v, u)
    return _copy_skeleton(graph, skip=(lo, hi)).freeze()


def with_link(graph: ASGraph, u: int, v: int, rel_of_v: Relationship) -> ASGraph:
    """A new frozen graph equal to ``graph`` plus a ``u``–``v`` link.

    ``rel_of_v`` is the relationship of ``v`` as seen from ``u``
    (``CUSTOMER`` makes ``u`` the provider; ``PEER`` adds a peering).
    Both endpoints must already exist — scenarios change connectivity,
    never membership — and the provider hierarchy must stay acyclic;
    violations raise :class:`~repro.errors.TopologyError`.
    """
    if u not in graph or v not in graph:
        missing = u if u not in graph else v
        raise TopologyError(f"AS {missing} not in graph; scenarios cannot add ASes")
    if graph.are_adjacent(u, v):
        raise TopologyError(f"link between AS {u} and AS {v} already exists")
    g = _copy_skeleton(graph)
    if rel_of_v is Relationship.CUSTOMER:
        g.add_p2c(u, v)
    elif rel_of_v is Relationship.PROVIDER:
        g.add_p2c(v, u)
    else:
        g.add_peering(u, v)
    return g.freeze()
