"""Load and save AS topologies in the CAIDA ``serial-1`` relationship format.

This is the interchange format of the AS-relationship datasets the paper's
topology trace [16] derives from.  Each non-comment line is::

    <as1>|<as2>|<relationship>

where relationship ``-1`` means *as1 is a provider of as2* (P2C) and ``0``
means the ASes are mutual peers.  Comment lines start with ``#``.

Having a real-trace loader means the synthetic-topology substitution
(DESIGN.md Section 2) is drop-in replaceable: point :func:`load_caida` at a
downloaded CAIDA/UCLA file and every experiment runs on the real Internet.
"""

from __future__ import annotations

import io
import os

from ..errors import TopologyError
from .asgraph import ASGraph
from .relationships import Relationship

__all__ = ["load_caida", "loads_caida", "save_caida", "dumps_caida"]


def loads_caida(text: str, *, freeze: bool = True) -> ASGraph:
    """Parse a CAIDA serial-1 relationship document from a string."""
    g = ASGraph()
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        parts = line.split("|")
        if len(parts) < 3:
            raise TopologyError(f"line {lineno}: expected 'as1|as2|rel', got {raw!r}")
        try:
            a, b, rel = int(parts[0]), int(parts[1]), int(parts[2])
        except ValueError as exc:
            raise TopologyError(f"line {lineno}: non-integer field in {raw!r}") from exc
        if rel == -1:
            g.add_p2c(a, b)
        elif rel == 0:
            g.add_peering(a, b)
        else:
            raise TopologyError(
                f"line {lineno}: unknown relationship code {rel} (want -1 or 0)"
            )
    if freeze:
        g.freeze()
    return g


def load_caida(path: str | os.PathLike, *, freeze: bool = True) -> ASGraph:
    """Load a CAIDA serial-1 relationship file from disk."""
    with io.open(path, "r", encoding="utf-8") as fh:
        return loads_caida(fh.read(), freeze=freeze)


def dumps_caida(graph: ASGraph, *, header: str | None = None) -> str:
    """Serialize ``graph`` to the serial-1 format.

    P2C links are written provider-first with code ``-1``; peering links
    with code ``0`` and the smaller AS number first.
    """
    out: list[str] = []
    if header:
        for line in header.splitlines():
            out.append(f"# {line}")
    for u, v, rel in graph.links():
        if rel is Relationship.CUSTOMER:  # v is u's customer => u provider
            out.append(f"{u}|{v}|-1")
        elif rel is Relationship.PROVIDER:  # u is v's customer
            out.append(f"{v}|{u}|-1")
        else:
            out.append(f"{u}|{v}|0")
    return "\n".join(out) + "\n"


def save_caida(graph: ASGraph, path: str | os.PathLike, *, header: str | None = None) -> None:
    """Write ``graph`` to ``path`` in the serial-1 format."""
    with io.open(path, "w", encoding="utf-8") as fh:
        fh.write(dumps_caida(graph, header=header))
