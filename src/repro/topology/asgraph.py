"""AS-level topology graph annotated with business relationships.

The graph is the substrate everything else (BGP propagation, MIFO
deflection, the fluid and packet simulators) runs on.  Nodes are AS numbers
(arbitrary ints); each undirected inter-AS link carries a business
relationship — provider–customer (P2C) or mutual peering — stored from both
endpoints' perspectives.

Performance notes (per the HPC guides): adjacency is kept in plain dicts and
per-relationship lists for O(1) neighbor queries inside the per-destination
BFS hot loops; :meth:`ASGraph.freeze` validates invariants once and caches
derived structures (sorted neighbor lists, link index) so the routing code
never re-derives them.
"""

from __future__ import annotations

import dataclasses
from collections.abc import Iterable, Iterator

import numpy as np

from ..errors import TopologyError
from .relationships import Relationship, invert

__all__ = ["ASGraph", "CsrAdjacency", "link_key"]


def link_key(u: int, v: int) -> tuple[int, int]:
    """Canonical undirected link identifier (smaller AS number first)."""
    return (u, v) if u <= v else (v, u)


@dataclasses.dataclass(frozen=True)
class CsrAdjacency:
    """Compact CSR view of a frozen :class:`ASGraph`.

    Nodes get a dense index ``0..n-1`` in **ascending AS-number order**, so
    index order and AS-number order coincide: a minimum over dense indices
    is a minimum over AS numbers, which is what BGP tie-breaking needs.

    Three per-relationship adjacency structures (customers, providers,
    peers) plus one combined structure carrying the relationship code of
    each neighbor (as seen from the row node).  ``*_rows`` are the repeated
    row indices aligned with ``*_indices`` — the COO row vector — kept
    because every per-destination pass needs them for ``np.minimum.at``
    style scatter reductions.

    Built once per frozen graph (see :meth:`ASGraph.csr`) and shared
    read-only by every destination computation and, via ``fork``, by every
    worker process of the parallel routing engine.
    """

    asns: np.ndarray  #: int64[n] dense index -> AS number (ascending)
    index: dict[int, int]  #: AS number -> dense index
    cust_indptr: np.ndarray  #: int64[n+1]
    cust_indices: np.ndarray  #: int32[sum deg_c] customers of each row
    cust_rows: np.ndarray  #: int32 aligned row indices
    prov_indptr: np.ndarray
    prov_indices: np.ndarray  #: providers of each row
    prov_rows: np.ndarray
    peer_indptr: np.ndarray
    peer_indices: np.ndarray  #: peers of each row
    peer_rows: np.ndarray
    nbr_indptr: np.ndarray
    nbr_indices: np.ndarray  #: all neighbors of each row (ascending)
    nbr_rel: np.ndarray  #: int8 relationship code of that neighbor

    @property
    def n_nodes(self) -> int:
        """Number of ASes in the dense index."""
        return len(self.asns)

    def neighbors_of(self, idx: int) -> tuple[np.ndarray, np.ndarray]:
        """(neighbor indices, relationship codes) of one dense index."""
        lo, hi = self.nbr_indptr[idx], self.nbr_indptr[idx + 1]
        return self.nbr_indices[lo:hi], self.nbr_rel[lo:hi]


def _build_class_csr(
    n: int, index: dict[int, int], rows_of: dict[int, list[int]]
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    counts = np.zeros(n, dtype=np.int64)
    for asn, nbrs in rows_of.items():
        counts[index[asn]] = len(nbrs)
    indptr = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(counts, out=indptr[1:])
    indices = np.empty(int(indptr[-1]), dtype=np.int32)
    for asn, nbrs in rows_of.items():
        i = index[asn]
        # neighbor lists are sorted by AS number at freeze(); the dense
        # mapping is monotone, so the mapped slice stays sorted.
        indices[indptr[i] : indptr[i + 1]] = [index[v] for v in nbrs]
    rows = np.repeat(np.arange(n, dtype=np.int32), counts)
    return indptr, indices, rows


def _build_csr(graph: "ASGraph") -> CsrAdjacency:
    asns = np.array(sorted(graph.nodes()), dtype=np.int64)
    index = {int(a): i for i, a in enumerate(asns)}
    n = len(asns)

    cust = _build_class_csr(n, index, graph._customers)
    prov = _build_class_csr(n, index, graph._providers)
    peer = _build_class_csr(n, index, graph._peers)

    counts = np.zeros(n, dtype=np.int64)
    for asn, nbrs in graph._nbr.items():
        counts[index[asn]] = len(nbrs)
    nbr_indptr = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(counts, out=nbr_indptr[1:])
    nbr_indices = np.empty(int(nbr_indptr[-1]), dtype=np.int32)
    nbr_rel = np.empty(int(nbr_indptr[-1]), dtype=np.int8)
    for asn, nbrs in graph._nbr.items():
        i = index[asn]
        lo = int(nbr_indptr[i])
        for k, (v, rel) in enumerate(sorted((index[v], r) for v, r in nbrs.items())):
            nbr_indices[lo + k] = v
            nbr_rel[lo + k] = int(rel)
    return CsrAdjacency(
        asns=asns,
        index=index,
        cust_indptr=cust[0],
        cust_indices=cust[1],
        cust_rows=cust[2],
        prov_indptr=prov[0],
        prov_indices=prov[1],
        prov_rows=prov[2],
        peer_indptr=peer[0],
        peer_indices=peer[1],
        peer_rows=peer[2],
        nbr_indptr=nbr_indptr,
        nbr_indices=nbr_indices,
        nbr_rel=nbr_rel,
    )


class ASGraph:
    """Mutable AS-level graph with provider/customer/peer annotations.

    Build with :meth:`add_as`, :meth:`add_p2c` and :meth:`add_peering`, then
    call :meth:`freeze` before handing the graph to routing or simulation
    code.  ``freeze`` checks structural invariants (no self loops, no
    duplicate conflicting links, acyclic provider hierarchy unless disabled)
    and makes the graph immutable.
    """

    def __init__(self) -> None:
        # _nbr[u][v] is the relationship of v *as seen from u*.
        self._nbr: dict[int, dict[int, Relationship]] = {}
        self._customers: dict[int, list[int]] = {}
        self._providers: dict[int, list[int]] = {}
        self._peers: dict[int, list[int]] = {}
        self._frozen = False
        self._links: list[tuple[int, int, Relationship]] | None = None
        self._csr: CsrAdjacency | None = None

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_as(self, asn: int) -> None:
        """Register an AS.  Adding an existing AS is a no-op."""
        self._check_mutable()
        if asn not in self._nbr:
            self._nbr[asn] = {}
            self._customers[asn] = []
            self._providers[asn] = []
            self._peers[asn] = []

    def add_p2c(self, provider: int, customer: int) -> None:
        """Add a provider→customer link (``customer`` pays ``provider``)."""
        self._add_link(provider, customer, Relationship.CUSTOMER)

    def add_peering(self, a: int, b: int) -> None:
        """Add a settlement-free peering link between ``a`` and ``b``."""
        self._add_link(a, b, Relationship.PEER)

    def _add_link(self, u: int, v: int, rel_of_v: Relationship) -> None:
        self._check_mutable()
        if u == v:
            raise TopologyError(f"self-loop on AS {u}")
        self.add_as(u)
        self.add_as(v)
        if v in self._nbr[u]:
            if self._nbr[u][v] is rel_of_v:
                return  # idempotent duplicate
            raise TopologyError(
                f"conflicting relationship on link {u}-{v}: "
                f"{self._nbr[u][v].name} vs {rel_of_v.name}"
            )
        self._nbr[u][v] = rel_of_v
        self._nbr[v][u] = invert(rel_of_v)
        if rel_of_v is Relationship.CUSTOMER:
            self._customers[u].append(v)
            self._providers[v].append(u)
        else:
            self._peers[u].append(v)
            self._peers[v].append(u)

    def _check_mutable(self) -> None:
        if self._frozen:
            raise TopologyError("graph is frozen")

    # ------------------------------------------------------------------
    # freezing & invariants
    # ------------------------------------------------------------------
    def freeze(self, *, require_acyclic_hierarchy: bool = True) -> "ASGraph":
        """Validate invariants, make immutable, and return ``self``.

        ``require_acyclic_hierarchy`` asserts the provider→customer
        relation has no directed cycle — a precondition of Gao–Rexford
        stability and of the path-counting DP.
        """
        if self._frozen:
            return self
        if require_acyclic_hierarchy and self._hierarchy_has_cycle():
            raise TopologyError("provider-customer hierarchy contains a cycle")
        for d in (self._customers, self._providers, self._peers):
            for lst in d.values():
                lst.sort()
        self._links = sorted(
            (u, v, rel)
            for u, nbrs in self._nbr.items()
            for v, rel in nbrs.items()
            if u < v
        )
        self._frozen = True
        return self

    def _hierarchy_has_cycle(self) -> bool:
        # Kahn's algorithm over provider→customer edges.
        indeg = {n: len(self._providers[n]) for n in self._nbr}
        stack = [n for n, d in indeg.items() if d == 0]
        seen = 0
        while stack:
            n = stack.pop()
            seen += 1
            for c in self._customers[n]:
                indeg[c] -= 1
                if indeg[c] == 0:
                    stack.append(c)
        return seen != len(self._nbr)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    @property
    def frozen(self) -> bool:
        """Whether freeze() has been called."""
        return self._frozen

    def csr(self) -> CsrAdjacency:
        """The compact CSR adjacency of this graph (frozen graphs only).

        Built lazily on first use and cached; the arrays are shared
        read-only by the array routing backend and — copy-on-write across
        ``fork`` — by every parallel-engine worker, so paper-scale graphs
        pay the construction cost exactly once per process tree.
        """
        if not self._frozen:
            raise TopologyError("freeze() the graph before building CSR arrays")
        if self._csr is None:
            self._csr = _build_csr(self)
        return self._csr

    def __len__(self) -> int:
        return len(self._nbr)

    def __contains__(self, asn: int) -> bool:
        return asn in self._nbr

    def nodes(self) -> Iterator[int]:
        """Iterate ASNs in insertion order."""
        return iter(self._nbr)

    def links(self) -> list[tuple[int, int, Relationship]]:
        """All links as ``(u, v, relationship-of-v-seen-from-u)``, u < v."""
        if self._links is not None:
            return self._links
        return sorted(
            (u, v, rel)
            for u, nbrs in self._nbr.items()
            for v, rel in nbrs.items()
            if u < v
        )

    def num_links(self) -> int:
        """Number of undirected links."""
        return sum(len(n) for n in self._nbr.values()) // 2

    def neighbors(self, asn: int) -> dict[int, Relationship]:
        """Mapping neighbor → relationship of that neighbor seen from ``asn``."""
        try:
            return self._nbr[asn]
        except KeyError:
            raise TopologyError(f"unknown AS {asn}") from None

    def relationship(self, u: int, v: int) -> Relationship:
        """Relationship of ``v`` as seen from ``u`` (raises if not adjacent)."""
        try:
            return self._nbr[u][v]
        except KeyError:
            raise TopologyError(f"no link between AS {u} and AS {v}") from None

    def are_adjacent(self, u: int, v: int) -> bool:
        """Whether a link ``u``-``v`` exists."""
        return v in self._nbr.get(u, ())

    def customers(self, asn: int) -> list[int]:
        """Customer ASNs of ``asn`` (sorted at freeze)."""
        return self._customers[asn]

    def providers(self, asn: int) -> list[int]:
        """Provider ASNs of ``asn`` (sorted at freeze)."""
        return self._providers[asn]

    def peers(self, asn: int) -> list[int]:
        """Peer ASNs of ``asn`` (sorted at freeze)."""
        return self._peers[asn]

    def degree(self, asn: int) -> int:
        """Number of neighbors of ``asn``."""
        return len(self._nbr[asn])

    def stub_ases(self) -> list[int]:
        """ASes with no customers — the traffic consumers of Section IV."""
        return [n for n in self._nbr if not self._customers[n]]

    def tier1_ases(self) -> list[int]:
        """ASes with no providers (the top of the hierarchy)."""
        return [n for n in self._nbr if not self._providers[n]]

    def is_connected(self) -> bool:
        """Whether the underlying undirected graph is connected."""
        if not self._nbr:
            return True
        it = iter(self._nbr)
        start = next(it)
        seen = {start}
        stack = [start]
        while stack:
            u = stack.pop()
            for v in self._nbr[u]:
                if v not in seen:
                    seen.add(v)
                    stack.append(v)
        return len(seen) == len(self._nbr)

    def subgraph_nodes_reachable_from(self, start: int) -> set[int]:
        """All ASes reachable from ``start`` ignoring relationships."""
        seen = {start}
        stack = [start]
        while stack:
            u = stack.pop()
            for v in self._nbr[u]:
                if v not in seen:
                    seen.add(v)
                    stack.append(v)
        return seen

    # ------------------------------------------------------------------
    # bulk helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_links(
        cls,
        p2c: Iterable[tuple[int, int]] = (),
        peering: Iterable[tuple[int, int]] = (),
        *,
        freeze: bool = True,
    ) -> "ASGraph":
        """Build a graph from link tuples; convenient in tests and examples.

        ``p2c`` tuples are ``(provider, customer)``.
        """
        g = cls()
        for prov, cust in p2c:
            g.add_p2c(prov, cust)
        for a, b in peering:
            g.add_peering(a, b)
        if freeze:
            g.freeze()
        return g

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ASGraph(|V|={len(self)}, |E|={self.num_links()}, "
            f"frozen={self._frozen})"
        )
