"""AS-level topology substrate (system S1 in DESIGN.md).

Public surface:

* :class:`~repro.topology.relationships.Relationship` and the valley-free
  predicates (``may_transit`` is the paper's Eq. 3),
* :class:`~repro.topology.asgraph.ASGraph` — the annotated AS graph,
* :func:`~repro.topology.generator.generate_topology` — seeded synthetic
  Internet matched to the paper's Table I statistics,
* CAIDA serial-1 ``load_caida``/``save_caida`` for real traces,
* :func:`~repro.topology.stats.topology_stats` — Table I attributes.
"""

from .asgraph import ASGraph, link_key
from .generator import DEFAULT_SCALE, PAPER_SCALE, TopologyConfig, generate_topology
from .loader import dumps_caida, load_caida, loads_caida, save_caida
from .relationships import (
    Relationship,
    export_allowed,
    invert,
    is_valley_free,
    may_transit,
)
from .stats import TopologyStats, topology_stats

__all__ = [
    "ASGraph",
    "link_key",
    "Relationship",
    "invert",
    "may_transit",
    "is_valley_free",
    "export_allowed",
    "TopologyConfig",
    "generate_topology",
    "PAPER_SCALE",
    "DEFAULT_SCALE",
    "load_caida",
    "loads_caida",
    "save_caida",
    "dumps_caida",
    "TopologyStats",
    "topology_stats",
]
