"""Synthetic AS-level Internet topology generator.

The paper evaluates on the UCLA IRL AS-topology trace of Nov 2014
(Table I: 44,340 nodes, 109,360 links, 69% provider–customer, 31% mutual
peering).  That trace is proprietary-hosted and not available offline, so
this module generates a *statistically matched* synthetic Internet:

* a clique of tier-1 ASes mutually peering (no providers),
* transit ASes attaching to 1..k providers chosen by preferential
  attachment (rich-get-richer, producing the measured power-law degree
  distribution),
* stub ASes (no customers) — the traffic consumers of Section IV,
* designated *content-provider* stubs with many peering links (the paper
  cites Google/Facebook's enormous peering degree),
* extra peering links between ASes of similar rank until the target
  peering fraction (~31%) is met.

The provider hierarchy is acyclic by construction: an AS may only pick
providers with a strictly smaller node index, and node index increases
down the hierarchy.  All randomness flows from a single seed for exact
reproducibility.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from ..errors import ConfigError
from .asgraph import ASGraph

__all__ = ["TopologyConfig", "generate_topology", "PAPER_SCALE", "DEFAULT_SCALE"]


@dataclasses.dataclass(frozen=True)
class TopologyConfig:
    """Parameters of the synthetic Internet generator.

    The defaults produce a ~2,000-AS Internet whose relationship mix and
    degree shape match Table I of the paper; ``PAPER_SCALE`` carries the
    full 44,340-AS parameters for users with time to burn.
    """

    n_ases: int = 2000
    n_tier1: int = 10
    transit_fraction: float = 0.15  #: fraction of non-tier-1 ASes that transit
    max_providers: int = 3  #: multihoming degree upper bound
    peering_fraction: float = 0.31  #: target fraction of links that peer
    n_content_providers: int = 20  #: stubs given rich peering (CDNs)
    content_peer_degree: int = 40  #: peering degree of each content provider
    seed: int = 2014

    def validate(self) -> None:
        """Reject inconsistent topology parameters."""
        if self.n_tier1 < 2:
            raise ConfigError("need at least 2 tier-1 ASes")
        if self.n_ases < self.n_tier1 + 2:
            raise ConfigError("n_ases too small for the requested tier-1 core")
        if not 0.0 < self.transit_fraction < 1.0:
            raise ConfigError("transit_fraction must be in (0, 1)")
        if not 0.0 <= self.peering_fraction < 1.0:
            raise ConfigError("peering_fraction must be in [0, 1)")
        if self.max_providers < 1:
            raise ConfigError("max_providers must be >= 1")


#: Full paper-scale configuration (Table I magnitude).  Expect minutes of
#: generation time and heavy routing compute downstream.
PAPER_SCALE = TopologyConfig(
    n_ases=44_340,
    n_tier1=14,
    transit_fraction=0.17,
    n_content_providers=200,
    content_peer_degree=120,
)

#: Laptop-scale default used by tests and benches.
DEFAULT_SCALE = TopologyConfig()


def generate_topology(config: TopologyConfig | None = None) -> ASGraph:
    """Generate a frozen :class:`ASGraph` according to ``config``."""
    cfg = config or DEFAULT_SCALE
    cfg.validate()
    rng = np.random.default_rng(cfg.seed)
    g = ASGraph()

    n = cfg.n_ases
    t1 = cfg.n_tier1
    n_transit = max(1, int(round((n - t1) * cfg.transit_fraction)))
    first_stub = t1 + n_transit

    for asn in range(n):
        g.add_as(asn)

    # --- tier-1 clique of mutual peers -------------------------------
    for i in range(t1):
        for j in range(i + 1, t1):
            g.add_peering(i, j)

    # --- transit + stub ASes: preferential provider attachment -------
    # customer_degree[i] drives preferential attachment.
    customer_degree = np.zeros(n, dtype=np.float64)
    for asn in range(t1, n):
        # Providers are drawn from everything above this AS in the order,
        # excluding stubs (stubs cannot be providers by definition).
        pool_end = min(asn, first_stub)
        pool = np.arange(pool_end)
        weights = customer_degree[:pool_end] + 1.0
        weights /= weights.sum()
        k = int(rng.integers(1, cfg.max_providers + 1))
        k = min(k, pool_end)
        providers = rng.choice(pool, size=k, replace=False, p=weights)
        for p in providers:
            g.add_p2c(int(p), asn)
            customer_degree[p] += 1.0

    # --- content-provider stubs: rich peering ------------------------
    # Scale the content-provider footprint with n so the Table-I
    # relationship mix holds at laptop scales too: at full scale the
    # configured values apply unchanged.
    n_cp = min(cfg.n_content_providers, n - first_stub, max(1, n // 100))
    peer_degree = min(cfg.content_peer_degree, max(4, n // 50))
    content = list(range(first_stub, first_stub + n_cp))
    transit_pool = np.arange(t1, first_stub)
    for cp in content:
        k = min(peer_degree, len(transit_pool))
        if k == 0:
            break
        targets = rng.choice(transit_pool, size=k, replace=False)
        for tgt in targets:
            tgt = int(tgt)
            if not g.are_adjacent(cp, tgt):
                g.add_peering(cp, tgt)

    # --- fill remaining peering to hit the target fraction -----------
    _add_rank_local_peering(g, cfg, rng, first_stub)

    return g.freeze()


def _add_rank_local_peering(
    g: ASGraph, cfg: TopologyConfig, rng: np.random.Generator, first_stub: int
) -> None:
    """Add peering links between similarly ranked ASes until the overall
    peering fraction reaches ``cfg.peering_fraction``.

    Real-world peering is assortative (ASes peer with ASes of comparable
    size), so candidate partners are drawn from a window of nearby node
    indices.
    """
    total = g.num_links()
    n_p2c = sum(1 for *_uv, rel in g.links() if rel.name == "CUSTOMER")
    # target: peering / total_links == peering_fraction
    #   =>    peering == p2c * f / (1 - f)
    f = cfg.peering_fraction
    target_peering = int(round(n_p2c * f / (1.0 - f)))
    current_peering = total - n_p2c
    need = target_peering - current_peering
    if need <= 0:
        return

    n = len(g)
    window = max(8, n // 20)
    attempts = 0
    max_attempts = need * 50
    added = 0
    while added < need and attempts < max_attempts:
        attempts += 1
        a = int(rng.integers(cfg.n_tier1, n))
        lo = max(cfg.n_tier1, a - window)
        hi = min(n - 1, a + window)
        if hi <= lo:
            continue
        b = int(rng.integers(lo, hi + 1))
        if a == b or g.are_adjacent(a, b):
            continue
        # Avoid peering a stub pair with no transit value: require at least
        # one endpoint below the stub boundary about half the time; pure
        # stub-stub peering exists (IXPs) but is rarer.
        if a >= first_stub and b >= first_stub and rng.random() < 0.5:
            continue
        g.add_peering(a, b)
        added += 1
