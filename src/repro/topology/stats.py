"""Topology attribute statistics — reproduces Table I of the paper.

Table I reports, for the Nov-2014 UCLA trace: number of nodes, number of
links, number of provider–customer links and number of peering links.
:func:`topology_stats` computes the same attributes for any
:class:`~repro.topology.asgraph.ASGraph`, plus the degree statistics the
path-diversity discussion (Section II-B, VI) relies on.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from .asgraph import ASGraph
from .relationships import Relationship

__all__ = ["TopologyStats", "topology_stats"]


@dataclasses.dataclass(frozen=True)
class TopologyStats:
    """Aggregate attributes of an AS graph (Table I columns + extras)."""

    n_nodes: int
    n_links: int
    n_p2c_links: int
    n_peering_links: int
    n_tier1: int
    n_stubs: int
    mean_degree: float
    max_degree: int
    median_degree: float
    multihomed_fraction: float  #: fraction of ASes with >= 2 neighbors

    @property
    def p2c_fraction(self) -> float:
        """p2c links as a fraction of all links."""
        return self.n_p2c_links / self.n_links if self.n_links else 0.0

    @property
    def peering_fraction(self) -> float:
        """Peering links as a fraction of all links."""
        return self.n_peering_links / self.n_links if self.n_links else 0.0

    def as_table_row(self) -> dict[str, int]:
        """The four Table-I columns, keyed like the paper's header."""
        return {
            "# of Nodes": self.n_nodes,
            "# of Links": self.n_links,
            "P/C Links": self.n_p2c_links,
            "Peering Links": self.n_peering_links,
        }


def topology_stats(graph: ASGraph) -> TopologyStats:
    """Compute :class:`TopologyStats` for ``graph``."""
    n_p2c = 0
    n_peer = 0
    for _u, _v, rel in graph.links():
        if rel is Relationship.PEER:
            n_peer += 1
        else:
            n_p2c += 1
    degrees = np.array([graph.degree(n) for n in graph.nodes()], dtype=np.int64)
    n_nodes = len(graph)
    return TopologyStats(
        n_nodes=n_nodes,
        n_links=n_p2c + n_peer,
        n_p2c_links=n_p2c,
        n_peering_links=n_peer,
        n_tier1=len(graph.tier1_ases()),
        n_stubs=len(graph.stub_ases()),
        mean_degree=float(degrees.mean()) if n_nodes else 0.0,
        max_degree=int(degrees.max()) if n_nodes else 0,
        median_degree=float(np.median(degrees)) if n_nodes else 0.0,
        multihomed_fraction=float((degrees >= 2).mean()) if n_nodes else 0.0,
    )
