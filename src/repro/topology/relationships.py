"""Business-relationship algebra between autonomous systems.

The paper (Section III-A3) formalizes inter-AS business relationships as an
algebraic order between adjacent vertices of the AS graph:

* ``v_i < v_{i+1}`` — ``(v_i, v_{i+1})`` is *(customer, provider)*;
* ``v_i = v_{i+1}`` — the two ASes are mutual *peers*;
* ``v_i > v_{i+1}`` — ``(v_i, v_{i+1})`` is *(provider, customer)*.

Transitivity holds only along chains of strict inequalities (paper Eq. 1-2).
The data-plane path-verification rule (paper Eq. 3) allows ``v_i`` to transit
a packet from ``v_{i-1}`` to ``v_{i+1}`` iff ``v_{i-1} < v_i`` **or**
``v_i > v_{i+1}`` — i.e. the upstream neighbor is a customer or the
downstream neighbor is a customer.  This module provides the relationship
enumeration and the pure predicates used throughout the control plane
(export policies) and the data plane (Tag-Check).
"""

from __future__ import annotations

import enum

__all__ = [
    "Relationship",
    "invert",
    "may_transit",
    "is_valley_free",
    "export_allowed",
]


class Relationship(enum.IntEnum):
    """Relationship of a *neighbor* as seen from a given AS.

    ``Relationship.CUSTOMER`` means "the neighbor is my customer".  Integer
    values are chosen so that the BGP route-selection preference order
    (customer routes > peer routes > provider routes, paper Section IV-A)
    coincides with ascending integer order, letting selection code compare
    the raw values directly.
    """

    CUSTOMER = 0  #: the neighbor pays me for transit
    PEER = 1  #: settlement-free mutual peering
    PROVIDER = 2  #: I pay the neighbor for transit

    @property
    def symbol(self) -> str:
        """Single-character rendering used by loaders and reports."""
        return {_C: "c", _P: "p", _R: "r"}[self]


_C = Relationship.CUSTOMER
_P = Relationship.PEER
_R = Relationship.PROVIDER

_INVERSE = {
    Relationship.CUSTOMER: Relationship.PROVIDER,
    Relationship.PROVIDER: Relationship.CUSTOMER,
    Relationship.PEER: Relationship.PEER,
}


def invert(rel: Relationship) -> Relationship:
    """Return the relationship seen from the other endpoint of a link.

    If B is A's ``CUSTOMER`` then A is B's ``PROVIDER``; peering is
    symmetric.
    """
    return _INVERSE[rel]


def may_transit(upstream: Relationship, downstream: Relationship) -> bool:
    """Paper Eq. 3 — the data-plane path-verification predicate.

    ``upstream`` and ``downstream`` are the relationships of the previous-hop
    and next-hop ASes *as seen from the transiting AS*.  Transit is permitted
    iff the upstream neighbor is a customer (``v_{i-1} < v_i``) or the
    downstream neighbor is a customer (``v_i > v_{i+1}``).

    >>> may_transit(Relationship.PEER, Relationship.PEER)
    False
    >>> may_transit(Relationship.CUSTOMER, Relationship.PROVIDER)
    True
    """
    return upstream is Relationship.CUSTOMER or downstream is Relationship.CUSTOMER


def is_valley_free(step_relationships: list[Relationship]) -> bool:
    """Whether a whole AS-level path is valley-free.

    ``step_relationships[i]`` is the relationship of hop ``i+1`` as seen from
    hop ``i`` (``PROVIDER`` meaning the path climbs, ``CUSTOMER`` meaning it
    descends).  A valley-free path is ``up* peer? down*``: zero or more
    customer→provider steps, at most one peer step, zero or more
    provider→customer steps.

    This is the *control-plane* notion; :func:`may_transit` is its per-hop
    data-plane enforcement.  Every step of a valley-free path satisfies
    Eq. 3, which is what makes default-path forwarding compatible with the
    Tag-Check rule.
    """
    # Phases: 0 = climbing, 1 = seen the single allowed peer step,
    # 2 = descending.  PROVIDER steps only in phase 0; a PEER step moves
    # 0 -> 2 (consuming the peer allowance); CUSTOMER steps move to phase 2.
    phase = 0
    for rel in step_relationships:
        if rel is Relationship.PROVIDER:
            if phase != 0:
                return False
        elif rel is Relationship.PEER:
            if phase != 0:
                return False
            phase = 2
        else:  # CUSTOMER: start/continue the descent
            phase = 2
    return True


def export_allowed(learned_from: Relationship | None, export_to: Relationship) -> bool:
    """Gao–Rexford export policy (control plane).

    ``learned_from`` is the relationship of the neighbor the route was
    learned from (``None`` for a locally originated route).  ``export_to``
    is the relationship of the neighbor the route would be announced to.

    Routes through peers and providers are exported only to customers;
    customer routes (and own prefixes) are exported to everyone.
    """
    if learned_from is None or learned_from is Relationship.CUSTOMER:
        return True
    return export_to is Relationship.CUSTOMER
