"""Exception hierarchy for the MIFO reproduction library.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch everything coming out of this package with a single handler while
letting programming errors (``TypeError`` etc.) propagate.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "TopologyError",
    "RoutingError",
    "NoRouteError",
    "ForwardingError",
    "LoopDetectedError",
    "SimulationError",
    "ConfigError",
    "VerificationError",
]


class ReproError(Exception):
    """Base class for every error raised by :mod:`repro`."""


class TopologyError(ReproError):
    """Malformed or inconsistent AS topology (unknown node, bad edge, ...)."""


class RoutingError(ReproError):
    """Control-plane failure (invalid route, policy violation, ...)."""


class NoRouteError(RoutingError):
    """No route exists toward the requested destination."""

    def __init__(self, source: int, destination: int) -> None:
        super().__init__(f"AS {source} has no route toward AS {destination}")
        self.source = source
        self.destination = destination


class ForwardingError(ReproError):
    """Data-plane failure while forwarding a packet."""


class LoopDetectedError(ForwardingError):
    """A forwarding loop was observed — this indicates a broken invariant.

    With Tag-Check enabled this must never fire (paper Theorem, Section
    III-A3); the ablation benches disable the check to show it firing.
    """

    def __init__(self, path: list[int]) -> None:
        super().__init__(f"forwarding loop detected: {' -> '.join(map(str, path))}")
        self.path = path


class SimulationError(ReproError):
    """Event-driven simulator reached an inconsistent state."""


class ConfigError(ReproError):
    """Invalid experiment or simulator configuration."""


class VerificationError(ReproError):
    """The static verifier refuted a forwarding invariant.

    Raised by the post-run gate (:mod:`repro.verify.gate`); ``report``
    carries the counterexample paths.
    """

    def __init__(self, report: object) -> None:
        if isinstance(report, str):
            # e.g. a trace cross-check failure, where the message carries
            # the problem list itself rather than a findings report.
            super().__init__(report)
        else:
            findings = getattr(report, "findings", ())
            checks = sorted({f.check for f in findings})
            super().__init__(
                f"static verification refuted "
                f"{', '.join(checks) or 'invariants'} "
                f"({len(findings)} finding(s))"
            )
        self.report = report
