"""Cross-scheme result summaries.

The examples and experiments all end by comparing BGP/MIRO/MIFO runs on
the same workload; this module centralizes that aggregation into one
typed structure (and keeps every consumer's numbers consistent).
"""

from __future__ import annotations

import dataclasses

import numpy as np

from ..flowsim.simulator import FluidSimResult
from .stability import switch_distribution

__all__ = ["SchemeSummary", "summarize", "comparison_rows"]


@dataclasses.dataclass(frozen=True)
class SchemeSummary:
    """Headline numbers of one fluid run."""

    scheme: str
    n_flows: int
    median_mbps: float
    mean_mbps: float
    p10_mbps: float
    p90_mbps: float
    fraction_at_500mbps: float
    offload_fraction: float
    fraction_switching: float
    mean_switches: float

    @classmethod
    def empty(cls, scheme: str) -> "SchemeSummary":
        """An all-zero summary for ``scheme``."""
        return cls(scheme, 0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0)


def summarize(result: FluidSimResult) -> SchemeSummary:
    """Aggregate one run into its headline numbers."""
    if not result.records:
        return SchemeSummary.empty(result.scheme)
    th = result.throughputs_bps() / 1e6
    switches = np.array([r.path_switches for r in result.records])
    dist = switch_distribution(result.records)
    return SchemeSummary(
        scheme=result.scheme,
        n_flows=len(result.records),
        median_mbps=float(np.median(th)),
        mean_mbps=float(th.mean()),
        p10_mbps=float(np.percentile(th, 10)),
        p90_mbps=float(np.percentile(th, 90)),
        fraction_at_500mbps=float((th >= 500.0).mean()),
        offload_fraction=result.fraction_on_alternative(),
        fraction_switching=dist.fraction_switching,
        mean_switches=float(switches.mean()),
    )


def comparison_rows(results: list[FluidSimResult]) -> list[list[object]]:
    """Rows for :func:`repro.experiments.report.text_table`: one scheme per
    row, ready-made for the standard comparison table."""
    rows = []
    for res in results:
        s = summarize(res)
        rows.append(
            [
                s.scheme,
                s.n_flows,
                f"{s.median_mbps:.0f}",
                f"{s.p10_mbps:.0f}",
                f"{s.p90_mbps:.0f}",
                f"{100 * s.fraction_at_500mbps:.1f}%",
                f"{100 * s.offload_fraction:.1f}%",
            ]
        )
    return rows
