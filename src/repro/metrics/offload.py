"""Traffic-offload metric — reproduces Fig. 8.

The paper "collect[s] the number of flows transferred on alternative paths
and divide[s] it by the total number of flows", per MIFO deployment ratio:
with 100% deployment about half the flows ride alternative paths; even at
10% deployment ~9% of traffic is offloaded.
"""

from __future__ import annotations

from collections.abc import Iterable

from ..flowsim.flow import FlowRecord

__all__ = ["offload_fraction"]


def offload_fraction(records: Iterable[FlowRecord]) -> float:
    """Fraction of flows ever carried on an alternative path."""
    total = 0
    offloaded = 0
    for r in records:
        total += 1
        if r.used_alternative:
            offloaded += 1
    return offloaded / total if total else 0.0
