"""Metrics & analysis (system S9 in DESIGN.md): CDFs, path diversity,
offload fraction, switch stability."""

from .cdf import Cdf, survival_series
from .diversity import (
    DiversityResult,
    count_bgp_paths,
    count_mifo_paths,
    diversity_counts,
)
from .offload import offload_fraction
from .stability import SwitchDistribution, switch_distribution
from .stretch import StretchStats, path_stretch
from .summary import SchemeSummary, comparison_rows, summarize

__all__ = [
    "Cdf",
    "survival_series",
    "DiversityResult",
    "count_bgp_paths",
    "count_mifo_paths",
    "diversity_counts",
    "offload_fraction",
    "SwitchDistribution",
    "switch_distribution",
    "StretchStats",
    "path_stretch",
    "SchemeSummary",
    "summarize",
    "comparison_rows",
]
