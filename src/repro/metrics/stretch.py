"""Path-stretch accounting: the cost side of deflection.

A deflected flow trades the congested default for a (usually longer)
alternative; the stretch — actual AS-hops over default-path AS-hops —
quantifies the extra capacity MIFO consumes per delivered byte.  The
paper does not plot stretch directly, but it is implicit in the Fig-7/8
discussion (alternatives are longer valley-free paths) and is the natural
ablation axis for the greedy selector.
"""

from __future__ import annotations

import dataclasses
from collections.abc import Iterable

import numpy as np

from ..bgp.propagation import RoutingCache
from ..flowsim.flow import FlowRecord

__all__ = ["StretchStats", "path_stretch"]


@dataclasses.dataclass(frozen=True)
class StretchStats:
    """Distribution of per-flow path stretch (1.0 = default path)."""

    mean: float
    median: float
    p95: float
    max: float
    fraction_stretched: float  #: flows whose final path exceeds the default

    @classmethod
    def from_ratios(cls, ratios: np.ndarray) -> "StretchStats":
        """Summary statistics of per-flow stretch ratios."""
        if ratios.size == 0:
            return cls(0.0, 0.0, 0.0, 0.0, 0.0)
        return cls(
            mean=float(ratios.mean()),
            median=float(np.median(ratios)),
            p95=float(np.percentile(ratios, 95)),
            max=float(ratios.max()),
            fraction_stretched=float((ratios > 1.0 + 1e-9).mean()),
        )


def path_stretch(
    records: Iterable[FlowRecord], routing: RoutingCache
) -> StretchStats:
    """Stretch of each flow's *final* path relative to its BGP default.

    Uses hop counts (node counts cancel); flows recorded before the
    ``final_path_len`` field existed (0) are skipped.
    """
    ratios = []
    for r in records:
        if r.final_path_len <= 0:
            continue
        default_hops = len(routing(r.dst).best_path(r.src)) - 1
        actual_hops = r.final_path_len - 1
        if default_hops > 0:
            ratios.append(actual_hops / default_hops)
    return StretchStats.from_ratios(np.asarray(ratios))
