"""Path-switch stability metrics — reproduces Fig. 9.

A *path switch* is a deflection from the default path to an alternative or
a resumption of the default (paper Section IV-D).  The paper reports the
distribution over flows *that switched at least once*: 67.7% switched
exactly once, 97.5% at most twice.
"""

from __future__ import annotations

import dataclasses
from collections.abc import Iterable

from ..flowsim.flow import FlowRecord

__all__ = ["SwitchDistribution", "switch_distribution"]


@dataclasses.dataclass(frozen=True)
class SwitchDistribution:
    """Histogram of per-flow path-switch counts."""

    #: switch count -> number of flows (last bucket aggregates >= max bucket)
    histogram: dict[int, int]
    total_flows: int
    switching_flows: int

    def fraction_of_switching(self, k: int) -> float:
        """Fraction of *switching* flows with exactly ``k`` switches — the
        paper's Fig-9 y-axis."""
        if self.switching_flows == 0:
            return 0.0
        return self.histogram.get(k, 0) / self.switching_flows

    def fraction_at_most(self, k: int) -> float:
        """Fraction of switching flows with <= ``k`` switches (97.5% for
        k=2 in the paper)."""
        if self.switching_flows == 0:
            return 0.0
        n = sum(v for c, v in self.histogram.items() if 1 <= c <= k)
        return n / self.switching_flows

    @property
    def fraction_switching(self) -> float:
        """Switching flows as a fraction of all flows."""
        if self.total_flows == 0:
            return 0.0
        return self.switching_flows / self.total_flows


def switch_distribution(
    records: Iterable[FlowRecord], *, max_bucket: int = 5
) -> SwitchDistribution:
    """Build the Fig-9 histogram from flow records."""
    hist: dict[int, int] = {}
    total = 0
    switching = 0
    for r in records:
        total += 1
        k = min(r.path_switches, max_bucket)
        hist[k] = hist.get(k, 0) + 1
        if r.path_switches > 0:
            switching += 1
    return SwitchDistribution(histogram=hist, total_flows=total, switching_flows=switching)
