"""Empirical CDFs and inverse-CDF series for the paper's figures."""

from __future__ import annotations

import dataclasses
from collections.abc import Iterable

import numpy as np

__all__ = ["Cdf", "survival_series"]


@dataclasses.dataclass(frozen=True)
class Cdf:
    """An empirical cumulative distribution over a sample."""

    values: np.ndarray  #: sorted sample

    @classmethod
    def from_samples(cls, samples: Iterable[float]) -> "Cdf":
        """Build a CDF from unsorted samples."""
        arr = np.sort(np.asarray(samples, dtype=np.float64))
        return cls(arr)

    def at(self, x: float) -> float:
        """P(X <= x), in [0, 1]."""
        if self.values.size == 0:
            return 0.0
        return float(np.searchsorted(self.values, x, side="right")) / self.values.size

    def fraction_at_least(self, x: float) -> float:
        """P(X >= x) — e.g. "fraction of flows attaining 500 Mbps"."""
        if self.values.size == 0:
            return 0.0
        return 1.0 - float(np.searchsorted(self.values, x, side="left")) / self.values.size

    def percentile(self, q: float) -> float:
        """Value at quantile ``q`` in [0, 100]."""
        return float(np.percentile(self.values, q))

    def series(
        self, points: int = 50, lo: float | None = None, hi: float | None = None
    ) -> tuple[np.ndarray, np.ndarray]:
        """``(x, cdf_percent)`` arrays shaped like the paper's CDF plots."""
        if self.values.size == 0:
            return np.zeros(0), np.zeros(0)
        lo = float(self.values[0]) if lo is None else lo
        hi = float(self.values[-1]) if hi is None else hi
        xs = np.linspace(lo, hi, points)
        ys = np.array([self.at(x) * 100.0 for x in xs])
        return xs, ys

    @property
    def median(self) -> float:
        """The 50th percentile."""
        return self.percentile(50.0)

    def __len__(self) -> int:
        return int(self.values.size)


def survival_series(samples: Iterable[float]) -> tuple[np.ndarray, np.ndarray]:
    """Descending-sorted sample vs. percentage rank — the Fig-7 layout
    ("number of paths per pair" against "percentage of node pairs")."""
    arr = np.sort(np.asarray(samples, dtype=np.float64))[::-1]
    if arr.size == 0:
        return np.zeros(0), np.zeros(0)
    pct = np.arange(1, arr.size + 1) / arr.size * 100.0
    return pct, arr
