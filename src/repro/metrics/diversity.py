"""Path-diversity counting — reproduces Fig. 7 ("Available Paths").

Counts, for an AS pair (s, t), how many distinct end-to-end forwarding
paths each scheme can realize:

* **BGP** — exactly one (the default path);
* **MIRO** — the default plus the strict-policy negotiated alternatives
  (:meth:`repro.miro.negotiation.MiroRouting.available_paths`);
* **MIFO** — every walk realizable by hop-by-hop forwarding where each
  MIFO-capable AS may deflect to any Tag-Check-permitted RIB alternative
  and every AS may use its default next hop.

The MIFO count is computed by dynamic programming over states
``(AS, tag_bit)``.  The move relation is acyclic: moves out of a
``bit=1`` state either climb the (acyclic) provider hierarchy, keeping
``bit=1``, or drop to ``bit=0``; moves out of a ``bit=0`` state strictly
descend customer edges.  Hence memoized DFS terminates and counts exactly
— no sampling, no approximation.  (Walks may legitimately visit one AS
twice — once climbing, once descending — see
:mod:`repro.mifo.deflection`; they are counted as distinct paths, as the
data plane would indeed realize them.)
"""

from __future__ import annotations

import dataclasses
from collections.abc import Iterable

from ..bgp.propagation import RoutingCache
from ..errors import NoRouteError
from ..mifo.tag import check_bit
from ..miro.negotiation import MiroRouting
from ..topology.asgraph import ASGraph
from ..topology.relationships import Relationship

__all__ = ["count_bgp_paths", "count_mifo_paths", "DiversityResult", "diversity_counts"]


def count_bgp_paths(routing_cache: RoutingCache, src: int, dst: int) -> int:
    """1 if a route exists, else 0 — BGP's single default path."""
    return 1 if routing_cache(dst).has_route(src) else 0


def count_mifo_paths(
    graph: ASGraph,
    routing_cache: RoutingCache,
    capable: frozenset[int],
    src: int,
    dst: int,
    *,
    max_count: int | None = None,
) -> int:
    """Exact number of distinct MIFO-realizable paths from ``src`` to
    ``dst`` under the given deployment set.

    ``max_count`` optionally clamps the result (counts can reach many
    thousands on well-connected pairs — the paper's Fig. 7 saturates its
    axis at 10^4).
    """
    routing = routing_cache(dst)
    if not routing.has_route(src):
        raise NoRouteError(src, dst)

    memo: dict[tuple[int, bool], int] = {}

    def visit(u: int, bit: bool) -> int:
        if u == dst:
            return 1
        key = (u, bit)
        cached = memo.get(key)
        if cached is not None:
            return cached
        total = 0
        default_nh = routing.next_hop(u)
        # Default forwarding is always available.
        total += visit(default_nh, _bit_at(graph, default_nh, u))
        # Capable ASes may deflect to Tag-Check-permitted alternatives.
        if u in capable:
            for entry in routing.rib(u):
                v = entry.neighbor
                if v == default_nh:
                    continue
                if check_bit(bit, entry.relationship):
                    total += visit(v, _bit_at(graph, v, u))
        if max_count is not None and total > max_count:
            total = max_count
        memo[key] = total
        return total

    # The source originates the packet: bit semantics of "own traffic".
    return visit(src, True)


def _bit_at(graph: ASGraph, node: int, upstream: int) -> bool:
    """Tag bit assigned when a packet enters ``node`` from ``upstream``."""
    return graph.relationship(node, upstream) is Relationship.CUSTOMER


@dataclasses.dataclass(frozen=True)
class DiversityResult:
    """Per-pair path counts for one scheme/deployment combination."""

    scheme: str
    deployment: float
    counts: list[int]

    def fraction_with_at_least(self, k: int) -> float:
        """Fraction of pairs with at least ``k`` paths."""
        if not self.counts:
            return 0.0
        return sum(c >= k for c in self.counts) / len(self.counts)


def diversity_counts(
    graph: ASGraph,
    routing_cache: RoutingCache,
    pairs: Iterable[tuple[int, int]],
    *,
    mifo_capable: frozenset[int],
    miro_routing: MiroRouting,
    max_count: int = 100_000,
) -> tuple[list[int], list[int]]:
    """MIFO and MIRO path counts over the same pair sample.

    Unroutable pairs (possible under adversarial graphs) are skipped in
    both series to keep them comparable.
    """
    mifo_counts: list[int] = []
    miro_counts: list[int] = []
    for s, t in pairs:
        if not routing_cache(t).has_route(s):
            continue
        mifo_counts.append(
            count_mifo_paths(
                graph, routing_cache, mifo_capable, s, t, max_count=max_count
            )
        )
        miro_counts.append(len(miro_routing.available_paths(s, t)))
    return mifo_counts, miro_counts
