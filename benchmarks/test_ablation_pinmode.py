"""Ablation bench: flow pinning policy (sticky vs the paper's literal
5-tuple hashing) on the Fig-11 testbed.

Both policies must avoid intra-flow reordering; they differ in how flows
are assigned to paths under congestion.  Sticky adapts (first-come flows
keep the default, later ones deflect); hash splits the flow space by a
fixed fraction regardless of arrival order.
"""


from repro.experiments import fig12
from repro.mifo.engine import MifoEngineConfig

from .conftest import write_result


def test_ablation_pin_mode(benchmark, results_dir):
    base = fig12.TestbedConfig(flows_per_source=10, flow_size_bytes=5e6)

    def run_mode(pin_mode: str, fraction: float = 0.5):
        # Rebuild the testbed with the chosen engine policy on every
        # router.
        import repro.experiments.fig12 as f12

        cfg = base

        def patched_engine_cfg():
            return MifoEngineConfig(
                congestion_threshold=cfg.congestion_threshold,
                pin_mode=pin_mode,
                hash_deflect_fraction=fraction,
            )

        net, handles = f12.build_testbed(cfg, mifo=True)
        # Swap engines for the requested pin mode.
        from repro.mifo.engine import MifoEngine

        for r in handles["routers"].values():
            r.engine = MifoEngine(patched_engine_cfg())
        s1, s2 = handles["sources"]
        from repro.dataplane.network import ThroughputSampler
        from repro.dataplane.tcp import TcpConfig

        sampler = ThroughputSampler(net, list(handles["sinks"]), interval=0.1)
        sampler.start()
        completions = []
        expected = 2 * cfg.flows_per_source

        def chain(host, dst, fid, remaining):
            def on_complete(sender):
                completions.append(sender.duration)
                if remaining > 1:
                    chain(host, dst, fid + 1, remaining - 1)
                elif len(completions) == expected:
                    sampler.stop()

            host.start_flow(fid, dst, cfg.flow_size_bytes,
                            config=TcpConfig(mss=cfg.mss), on_complete=on_complete)

        chain(s1, "D1", 1000, cfg.flows_per_source)
        chain(s2, "D2", 2000, cfg.flows_per_source)
        net.run(max_events=cfg.max_events)
        return sampler.mean_bps()

    def run_all():
        return {
            "sticky": run_mode("sticky"),
            "hash(0.5)": run_mode("hash", 0.5),
        }

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)
    rendered = (
        "Ablation: flow pinning policy (Section II-A hashing)\n"
        + "\n".join(
            f"aggregate goodput [{k:>9s}]: {v / 1e9:.2f} Gb/s"
            for k, v in results.items()
        )
        + "\nFinding: a fixed hash split is load-oblivious — with few"
        "\nconcurrent flows it frequently co-buckets them onto one path,"
        "\nwhile sticky pinning adapts to the observed queue and splits"
        "\nthe pair. Hashing's value is statistical, at many-flow scale."
    )
    write_result(results_dir, "ablation_pinmode", rendered)

    # Sticky adapts and clearly beats the single-path bound.
    assert results["sticky"] > 1.2e9
    # Hash never does worse than single-path BGP, and sticky >= hash on
    # this two-at-a-time workload.
    assert results["hash(0.5)"] >= 0.9e9
    assert results["sticky"] >= results["hash(0.5)"]
