"""Propagation throughput scale curve + the persistent-pool CI gate.

Two measurements, both recorded in ``results/BENCH_suite.json``:

* ``micro_scale`` — destinations/second of one Gao–Rexford convergence at
  1k / 10k / 44k ASes (the 44k tier is the paper's 44,340-AS UCLA IRL
  topology), for the serial array backend and the persistent
  shared-memory pool.  The rendered curve lands in
  ``results/microbench_scale.txt``.
* ``micro_scale_gate`` — the ISSUE-9 acceptance gate: at the 10k tier a
  **persistent** pool must finish a stream of small destination batches
  at least 2x faster than **fork-per-run** pools, because each fork-per-
  run call pays pool spin-up while the standing pool pays it once.  Both
  sides take the best of three repetitions so scheduler noise cannot
  flip the verdict.

Tier selection is environment-driven so CI stays fast: set
``MIFO_SCALE_TIERS`` to a comma-separated subset of ``1k,10k,44k``
(default ``1k,10k``).  The CI ``scale`` job runs the 1k smoke tier only;
run all three tiers locally to refresh the full curve.
"""

import os

import pytest

from repro.bgp.parallel import ParallelRoutingEngine, fork_available
from repro.telemetry import Stopwatch
from repro.topology.generator import TopologyConfig, generate_topology

from .conftest import write_result

#: Tier name -> AS count.  44k is the paper's measured topology size.
TIERS: dict[str, int] = {"1k": 1_000, "10k": 10_000, "44k": 44_340}

#: Destinations converged per tier for the throughput curve — scaled down
#: with topology size so every tier costs roughly the same wall-clock.
CURVE_DESTS: dict[str, int] = {"1k": 32, "10k": 12, "44k": 6}

_DEFAULT_TIERS = "1k,10k"

#: Gate shape: NB batches of BATCH destinations each, best of REPS runs.
GATE_TIER = "10k"
GATE_BATCH = 2
GATE_BATCHES = 12
GATE_REPS = 3
GATE_MIN_SPEEDUP = 2.0


def selected_tiers() -> list[str]:
    """The tier subset this run covers, from ``MIFO_SCALE_TIERS``."""
    raw = os.environ.get("MIFO_SCALE_TIERS", _DEFAULT_TIERS)
    names = [t.strip() for t in raw.split(",") if t.strip()]
    unknown = sorted(set(names) - set(TIERS))
    if unknown:
        raise ValueError(
            f"MIFO_SCALE_TIERS has unknown tiers {unknown}; "
            f"choose from {sorted(TIERS)}"
        )
    return names


_GRAPHS: dict[str, object] = {}


def _graph(tier: str):
    """Tier topology, built once per process (the 44k build is minutes)."""
    if tier not in _GRAPHS:
        g = generate_topology(TopologyConfig(n_ases=TIERS[tier], seed=2014))
        g.csr()  # warm the adjacency outside every timed region
        _GRAPHS[tier] = g
    return _GRAPHS[tier]


class TestScaleCurve:
    def test_dests_per_second_curve(self, results_dir, bench_report):
        """Record serial + persistent-pool throughput at each tier."""
        tiers = selected_tiers()
        rows: list[tuple[str, int, int, float, float]] = []
        for tier in tiers:
            graph = _graph(tier)
            n_dests = CURVE_DESTS[tier]
            dests = list(range(n_dests))

            serial = ParallelRoutingEngine(graph, n_workers=1)
            sw = Stopwatch()
            serial_map = serial.compute_many(dests)
            serial_tput = n_dests / sw.elapsed

            with ParallelRoutingEngine(
                graph, n_workers=2, persistent=True
            ) as engine:
                # pool spin-up outside the timed region (>= 2 dests, or the
                # engine takes the serial path and never starts the pool)
                engine.compute_many(dests[:2])
                assert engine.pool_live
                sw.restart()
                pool_map = engine.compute_many(dests)
                pool_tput = n_dests / sw.elapsed

            # same answers at every tier, whatever the substrate
            probe = dests[n_dests // 2]
            assert pool_map[probe].reachable_count() == serial_map[
                probe
            ].reachable_count()

            rows.append((tier, len(graph), n_dests, serial_tput, pool_tput))
            bench_report(
                "micro_scale",
                tier=tier,
                n_ases=len(graph),
                n_dests=n_dests,
                serial_dests_per_s=round(serial_tput, 2),
                persistent_dests_per_s=round(pool_tput, 2),
            )

        lines = [
            f"propagation throughput scale curve (tiers: {', '.join(tiers)})",
            f"  {'tier':>5} {'ASes':>7} {'dests':>6} "
            f"{'serial d/s':>11} {'pool d/s':>9}",
        ]
        for tier, n_ases, n_dests, s_tput, p_tput in rows:
            lines.append(
                f"  {tier:>5} {n_ases:>7} {n_dests:>6} "
                f"{s_tput:>11.1f} {p_tput:>9.1f}"
            )
        write_result(results_dir, "microbench_scale", "\n".join(lines))

        # per-destination cost must grow with topology size: each larger
        # tier's serial throughput is strictly below the previous tier's
        # (the gaps are ~7x, so this cannot flake on scheduler noise).
        for (_, _, _, prev, _), (_, _, _, cur, _) in zip(rows, rows[1:]):
            assert cur < prev, (rows,)


class TestPersistentPoolGate:
    @pytest.mark.skipif(not fork_available(), reason="needs the fork start method")
    def test_persistent_amortizes_pool_startup(self, bench_report):
        """ISSUE-9 gate: persistent >= 2x fork-per-run on repeated batches."""
        if GATE_TIER not in selected_tiers():
            pytest.skip(f"gate tier {GATE_TIER!r} not in MIFO_SCALE_TIERS")
        graph = _graph(GATE_TIER)
        batches = [
            list(range(b * GATE_BATCH, (b + 1) * GATE_BATCH))
            for b in range(GATE_BATCHES)
        ]

        def run_fork_per_run() -> float:
            engine = ParallelRoutingEngine(graph, n_workers=2)
            sw = Stopwatch()
            for batch in batches:
                engine.compute_many(batch)
            return sw.elapsed

        def run_persistent() -> float:
            with ParallelRoutingEngine(
                graph, n_workers=2, persistent=True
            ) as engine:
                engine.compute_many(batches[0])  # pool paid once, here
                assert engine.pool_live
                sw = Stopwatch()
                for batch in batches:
                    engine.compute_many(batch)
                return sw.elapsed

        fork_s = min(run_fork_per_run() for _ in range(GATE_REPS))
        persistent_s = min(run_persistent() for _ in range(GATE_REPS))
        speedup = fork_s / persistent_s

        bench_report(
            "micro_scale_gate",
            tier=GATE_TIER,
            batch=GATE_BATCH,
            batches=GATE_BATCHES,
            fork_per_run_s=round(fork_s, 4),
            persistent_s=round(persistent_s, 4),
            speedup=round(speedup, 2),
        )
        assert speedup >= GATE_MIN_SPEEDUP, (
            f"persistent pool only {speedup:.2f}x faster than fork-per-run "
            f"(gate: >= {GATE_MIN_SPEEDUP}x): {fork_s:.3f}s vs {persistent_s:.3f}s"
        )
