"""Bench: regenerate Figure 7 (available paths per AS pair).

Paper headlines asserted: (a) MIFO at 50% deployment offers more paths
than MIRO fully deployed; (b) full-deployment MIFO's diversity is an order
of magnitude beyond MIRO's strict cap; (c) diversity grows with
deployment."""

from repro.experiments import fig7

from .conftest import write_result


def test_fig7(benchmark, results_dir, bench_scale):
    result = benchmark.pedantic(
        lambda: fig7.run(bench_scale, backend="array").raw, rounds=1, iterations=1
    )
    write_result(results_dir, "fig7", result.render())

    # (a) half-deployed MIFO >= fully-deployed MIRO.
    assert result.median("MIFO", 0.5) >= result.median("MIRO", 1.0)
    # (b) order-of-magnitude gap at full deployment (MIRO is capped at
    # 1 + max_alternatives = 3 paths).
    assert result.median("MIFO", 1.0) >= 3 * result.median("MIRO", 1.0)
    # (c) monotone in deployment.
    assert result.median("MIFO", 1.0) >= result.median("MIFO", 0.5)
    # Most pairs enjoy real multipath under full MIFO.
    assert result.fraction_with_at_least("MIFO", 1.0, 10) > 0.5
    # MIRO never exceeds its negotiated cap.
    assert max(result.counts[("MIRO", 1.0)]) <= 3
