"""The telemetry layer's zero-overhead gate.

Instrumentation is woven through the routing hot path, so "zero overhead
when disabled" is a claim this suite must *prove*, not assert in a
docstring.  Two measurements back it:

* the per-call cost of a disabled sink function (``tm.inc`` /
  ``tm.span`` with no active registry) — a global read and a branch;
* the wall time of the array-backend per-destination convergence, the
  hot path the instrumentation rides on.

The gate multiplies the measured per-call cost by the number of
instrumentation sites the hot path executes per destination (audited
below) and requires the product to stay under 2% of the measured
per-destination convergence time.  This is robust where a direct A/B
wall-clock comparison at the 2% level would be noise-bound on shared CI
runners; the A/B numbers are still measured and reported for the record.
"""


import pytest

from repro import telemetry as tm
from repro.bgp.array_routing import compute_array_routing
from repro.telemetry import Stopwatch, Telemetry

from .conftest import write_result

#: disabled-sink calls the array hot path executes per destination:
#: one ``tm.span("bgp.propagate")`` enter+exit pair and two ``tm.inc``
#: (``bgp.destinations_converged``, ``bgp.routes_propagated``) in
#: ``ArrayDestinationRouting._ensure_state``.  Kept deliberately
#: generous (x2 safety factor applied below).
CALLS_PER_DEST = 4

N_DESTS = 30
OVERHEAD_BUDGET = 0.02


@pytest.fixture(scope="module")
def graph():
    from repro.topology.generator import TopologyConfig, generate_topology

    g = generate_topology(TopologyConfig(n_ases=1200))
    g.csr()  # warm adjacency: time convergence, not CSR construction
    return g


def _best_of(fn, repeats=3):
    """Minimum wall time over repeats — the standard noise filter."""
    best = float("inf")
    sw = Stopwatch()
    for _ in range(repeats):
        sw.restart()
        fn()
        best = min(best, sw.elapsed)
    return best


def test_disabled_overhead_under_two_percent(graph, results_dir, bench_report):
    assert tm.active() is None, "telemetry must be disabled for this gate"

    # (1) per-call cost of the disabled sink.
    calls = 200_000
    sw = Stopwatch()
    for _ in range(calls):
        tm.inc("bench.counter")
    inc_cost = sw.elapsed / calls
    sw.restart()
    for _ in range(calls):
        with tm.span("bench.phase"):
            pass
    span_cost = sw.elapsed / calls
    per_call = max(inc_cost, span_cost)

    # (2) the hot path itself, telemetry disabled.
    dests = list(range(N_DESTS))

    def hot_path():
        for d in dests:
            compute_array_routing(graph, d)

    t_disabled = _best_of(hot_path)
    per_dest = t_disabled / N_DESTS

    # (3) the gate: audited site count x2 safety, against measured cost.
    overhead = (2 * CALLS_PER_DEST * per_call) / per_dest
    assert overhead < OVERHEAD_BUDGET, (
        f"disabled telemetry costs {overhead:.3%} of the per-destination "
        f"convergence time (budget {OVERHEAD_BUDGET:.0%}); "
        f"per_call={per_call * 1e9:.0f}ns per_dest={per_dest * 1e3:.2f}ms"
    )

    # (4) for the record: the same path with telemetry enabled.
    telem = Telemetry()
    tm.activate(telem)
    try:
        t_enabled = _best_of(hot_path)
    finally:
        tm.activate(None)
    enabled_ratio = t_enabled / t_disabled

    report = (
        "telemetry micro-benchmark (array backend, 1200 ASes, "
        f"{N_DESTS} destinations)\n"
        f"disabled sink cost:        {per_call * 1e9:8.1f} ns/call\n"
        f"hot path, disabled:        {per_dest * 1e3:8.2f} ms/destination\n"
        f"hot path, enabled:         {t_enabled / N_DESTS * 1e3:8.2f} ms/destination\n"
        f"disabled overhead bound:   {overhead:8.3%}  (budget {OVERHEAD_BUDGET:.0%})\n"
        f"enabled/disabled ratio:    {enabled_ratio:8.3f}\n"
    )
    write_result(results_dir, "microbench_telemetry", report)
    bench_report(
        "micro_telemetry",
        per_call_ns=per_call * 1e9,
        per_dest_ms=per_dest * 1e3,
        disabled_overhead=overhead,
        enabled_ratio=enabled_ratio,
        n_dests=N_DESTS,
    )


def test_enabled_telemetry_records_the_hot_path(graph):
    telem = Telemetry()
    tm.activate(telem)
    try:
        compute_array_routing(graph, 42)
    finally:
        tm.activate(None)
    snap = telem.snapshot()
    assert snap.counters["bgp.destinations_converged"] == 1
    assert snap.spans["bgp.propagate"][1] == 1
