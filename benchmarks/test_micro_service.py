"""Bounded-memory soak of the streaming service mode.

The ISSUE acceptance gate for ``repro.service``: the session must ingest
an *unbounded* interleaved stream without unbounded growth.  This soak
drives ≥100k events through one :class:`ServiceSession` on a small
topology with short flow lifetimes, then asserts

* the resident-set high-water mark grew by less than ``RSS_CEILING_MB``
  after warm-up (stdlib ``resource.getrusage`` — ``ru_maxrss`` is KB on
  Linux, so a genuine leak of even a few MB per 10k events trips it),
* the record ring and live-flow population stayed bounded, and
* steady-state throughput clears ``EVENTS_PER_SEC_FLOOR``.

Throughput lands in ``results/BENCH_suite.json`` via ``bench_report`` so
repeated runs accumulate a queryable trajectory.
"""

import resource
import sys

import pytest

from repro.service import ServiceConfig, ServiceSession
from repro.telemetry import Stopwatch
from repro.topology.generator import TopologyConfig

from .conftest import write_result

N_EVENTS = 100_000
WARMUP_EVENTS = 2_000
RSS_CEILING_MB = 64.0
EVENTS_PER_SEC_FLOOR = 300.0
LIVE_FLOW_CEILING = 500

CFG = ServiceConfig(
    seed=2014,
    arrival_rate=400.0,
    mean_lifetime_events=10.0,
    p_link_event=0.002,
    p_capacity_event=0.002,
    record_capacity=256,
)
TOPO = TopologyConfig(n_ases=120, seed=2014)


def _rss_mb() -> float:
    """Peak RSS in MB.  ``ru_maxrss`` is KB on Linux, bytes on macOS."""
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    return peak / 1024.0 if sys.platform != "darwin" else peak / (1024.0**2)


class TestServiceSoak:
    @pytest.mark.slow
    def test_soak_bounded_memory_and_throughput(self, results_dir, bench_report):
        session = ServiceSession(CFG, topology=TOPO)

        session.drain(WARMUP_EVENTS)
        rss_warm = _rss_mb()

        sw = Stopwatch()
        session.drain(N_EVENTS - WARMUP_EVENTS)
        elapsed = sw.elapsed
        rss_end = _rss_mb()

        rss_delta = rss_end - rss_warm
        events_per_sec = (N_EVENTS - WARMUP_EVENTS) / elapsed

        lines = [
            "Service-mode soak (bounded memory + throughput)",
            f"  topology:        {TOPO.n_ases} ASes",
            f"  events:          {session.events_processed:,} "
            f"({session.arrivals_total:,} arrivals, "
            f"{session.retired_total:,} retired)",
            f"  live flows:      {session.engine.n_flows} at exit "
            f"(ceiling {LIVE_FLOW_CEILING})",
            f"  record ring:     {len(session.engine.records)} "
            f"(capacity {CFG.record_capacity})",
            f"  rss:             {rss_warm:.1f} MB warm -> {rss_end:.1f} MB "
            f"(delta {rss_delta:.2f} MB, ceiling {RSS_CEILING_MB:g} MB)",
            f"  throughput:      {events_per_sec:,.0f} events/s "
            f"(floor {EVENTS_PER_SEC_FLOOR:g})",
        ]
        write_result(results_dir, "microbench_service", "\n".join(lines))
        bench_report(
            "service_soak",
            n_events=N_EVENTS,
            events_per_sec=round(events_per_sec, 1),
            rss_delta_mb=round(rss_delta, 2),
            live_flows=session.engine.n_flows,
        )

        assert session.events_processed == N_EVENTS
        # Memory: the whole point of the service mode.
        assert rss_delta < RSS_CEILING_MB, "\n".join(lines)
        assert len(session.engine.records) == CFG.record_capacity
        assert session.engine.n_flows < LIVE_FLOW_CEILING
        # The population turned over many times; nothing accumulated.
        assert session.retired_total > session.engine.n_flows * 50
        assert events_per_sec >= EVENTS_PER_SEC_FLOOR, "\n".join(lines)
