"""Service-mode throughput curve and bounded-memory soak.

Two acceptance gates for ``repro.service`` at scale:

* **Throughput curve** — steady-state events/s at ``batch_max`` 1, 16
  and 64, serial and with a persistent sharded routing engine attached.
  Best-of-reps (max rate = min wall-clock) lands in
  ``results/microbench_service.txt`` and ``results/BENCH_suite.json``.
  The CI gate: batching at 64 must clear **3x** the single-threaded
  unbatched (seed) rate — the point of coalescing N ticks into one
  delta-solve.
* **Soak** — the session must ingest an unbounded interleaved stream
  without unbounded growth.  ``MIFO_SOAK_EVENTS`` (default 100k; the
  nightly job pushes 1M) events through one batched session, then the
  resident-set high-water mark must have grown by less than
  ``RSS_CEILING_MB`` after warm-up (stdlib ``resource.getrusage`` —
  ``ru_maxrss`` is KB on Linux, so a genuine leak of even a few MB per
  10k events trips it), the record ring and live-flow population must
  have stayed bounded, and steady-state throughput must clear the floor.
"""

import os
import resource
import sys

import pytest

from repro.bgp.parallel import ParallelRoutingEngine
from repro.service import ServiceConfig, ServiceSession
from repro.telemetry import Stopwatch
from repro.topology.generator import TopologyConfig

from .conftest import write_result

#: nightly knob: MIFO_SOAK_EVENTS=1000000 pushes the soak to 1M events.
N_SOAK_EVENTS = int(os.environ.get("MIFO_SOAK_EVENTS", "100000"))
WARMUP_EVENTS = 2_000
RSS_CEILING_MB = 64.0
EVENTS_PER_SEC_FLOOR = 300.0
LIVE_FLOW_CEILING = 500

#: curve parameters: events per timed rep, reps per cell, CI speedup gate.
N_CURVE_EVENTS = 2_000
CURVE_WARMUP = 300
CURVE_REPS = 2
BATCH_SPEEDUP_GATE = 3.0
CURVE_BATCHES = (1, 16, 64)

_BASE = dict(
    seed=2014,
    arrival_rate=400.0,
    mean_lifetime_events=10.0,
    p_link_event=0.002,
    p_capacity_event=0.002,
    record_capacity=256,
)
TOPO = TopologyConfig(n_ases=120, seed=2014)


def _rss_mb() -> float:
    """Peak RSS in MB.  ``ru_maxrss`` is KB on Linux, bytes on macOS."""
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    return peak / 1024.0 if sys.platform != "darwin" else peak / (1024.0**2)


def _curve_rate(batch_max: int, *, sharded: bool) -> float:
    """Best-of-reps steady-state events/s for one curve cell."""
    best = 0.0
    for _ in range(CURVE_REPS):
        cfg = ServiceConfig(batch_max=batch_max, **_BASE)
        session = ServiceSession(cfg, topology=TOPO, backend="array")
        if sharded:
            session.attach_routing_engine(
                ParallelRoutingEngine(
                    session.engine.routing.graph,
                    n_workers=4,
                    persistent=True,
                ),
                shard_min=4,
            )
        try:
            session.drain(CURVE_WARMUP)
            sw = Stopwatch()
            session.drain(N_CURVE_EVENTS)
            best = max(best, N_CURVE_EVENTS / sw.elapsed)
        finally:
            session.close()
    return best


class TestServiceThroughputCurve:
    @pytest.mark.slow
    def test_batched_throughput_clears_gate(self, results_dir, bench_report):
        rates: dict[tuple[int, str], float] = {}
        for batch_max in CURVE_BATCHES:
            for mode in ("serial", "sharded"):
                rates[(batch_max, mode)] = _curve_rate(
                    batch_max, sharded=(mode == "sharded")
                )

        seed_rate = rates[(1, "serial")]
        lines = [
            "Service-mode throughput curve (events/s, best of "
            f"{CURVE_REPS} reps, {N_CURVE_EVENTS} events/rep, "
            f"{TOPO.n_ases} ASes, array backend)",
            f"  {'batch_max':>9}  {'serial':>10}  {'sharded':>10}  speedup",
        ]
        for batch_max in CURVE_BATCHES:
            serial = rates[(batch_max, "serial")]
            sharded = rates[(batch_max, "sharded")]
            lines.append(
                f"  {batch_max:>9}  {serial:>10,.0f}  {sharded:>10,.0f}  "
                f"{serial / seed_rate:.2f}x"
            )
        lines.append(
            f"  gate: batch-64 serial >= {BATCH_SPEEDUP_GATE:g}x batch-1 "
            f"serial ({rates[(64, 'serial')] / seed_rate:.2f}x measured)"
        )
        write_result(results_dir, "microbench_service", "\n".join(lines))
        for (batch_max, mode), rate in sorted(rates.items()):
            bench_report(
                "service_throughput",
                batch_max=batch_max,
                mode=mode,
                n_events=N_CURVE_EVENTS,
                events_per_sec=round(rate, 1),
            )

        assert rates[(64, "serial")] >= BATCH_SPEEDUP_GATE * seed_rate, (
            "\n".join(lines)
        )
        # Batching must help monotonically at curve granularity.
        assert rates[(16, "serial")] > seed_rate, "\n".join(lines)


class TestServiceSoak:
    @pytest.mark.slow
    def test_soak_bounded_memory_and_throughput(self, results_dir, bench_report):
        cfg = ServiceConfig(batch_max=64, **_BASE)
        session = ServiceSession(cfg, topology=TOPO)

        session.drain(WARMUP_EVENTS)
        rss_warm = _rss_mb()

        sw = Stopwatch()
        session.drain(N_SOAK_EVENTS - WARMUP_EVENTS)
        elapsed = sw.elapsed
        rss_end = _rss_mb()

        rss_delta = rss_end - rss_warm
        events_per_sec = (N_SOAK_EVENTS - WARMUP_EVENTS) / elapsed

        lines = [
            "Service-mode soak (bounded memory + throughput, batch_max=64)",
            f"  topology:        {TOPO.n_ases} ASes",
            f"  events:          {session.events_processed:,} "
            f"({session.arrivals_total:,} arrivals, "
            f"{session.retired_total:,} retired)",
            f"  live flows:      {session.engine.n_flows} at exit "
            f"(ceiling {LIVE_FLOW_CEILING})",
            f"  record ring:     {len(session.engine.records)} "
            f"(capacity {cfg.record_capacity})",
            f"  rss:             {rss_warm:.1f} MB warm -> {rss_end:.1f} MB "
            f"(delta {rss_delta:.2f} MB, ceiling {RSS_CEILING_MB:g} MB)",
            f"  throughput:      {events_per_sec:,.0f} events/s "
            f"(floor {EVENTS_PER_SEC_FLOOR:g})",
        ]
        write_result(results_dir, "microbench_service_soak", "\n".join(lines))
        bench_report(
            "service_soak",
            n_events=N_SOAK_EVENTS,
            batch_max=64,
            events_per_sec=round(events_per_sec, 1),
            rss_delta_mb=round(rss_delta, 2),
            live_flows=session.engine.n_flows,
        )

        assert session.events_processed == N_SOAK_EVENTS
        # Memory: the whole point of the service mode.
        assert rss_delta < RSS_CEILING_MB, "\n".join(lines)
        assert len(session.engine.records) == cfg.record_capacity
        assert session.engine.n_flows < LIVE_FLOW_CEILING
        # The population turned over many times; nothing accumulated.
        assert session.retired_total > session.engine.n_flows * 50
        assert events_per_sec >= EVENTS_PER_SEC_FLOOR, "\n".join(lines)
