"""Bench: regenerate Figure 6 (power-law traffic, α ∈ {0.8, 1.0, 1.2} at
50% deployment).  Paper headline at α=1.0: MIFO 40% / MIRO 17% / BGP 7% of
flows attain 500 Mbps — we assert the ordering and that BGP degrades with
skew while MIFO holds up."""

from repro.experiments import fig6

from .conftest import write_result


def test_fig6(benchmark, results_dir, bench_scale):
    result = benchmark.pedantic(
        lambda: fig6.run(bench_scale, backend="array").raw, rounds=1, iterations=1
    )
    write_result(results_dir, "fig6", result.render())

    for alpha in (0.8, 1.0, 1.2):
        mifo = result.cdf(alpha, "MIFO").median
        miro = result.cdf(alpha, "MIRO").median
        bgp = result.cdf(alpha, "BGP").median
        assert mifo >= bgp * 0.97, (alpha, mifo, bgp)
        assert mifo >= miro * 0.90, (alpha, mifo, miro)

    # "The performance of BGP routing degrades as the skewness grows" —
    # absolute BGP medians fall monotonically with alpha ...
    bgp_medians = [result.cdf(a, "BGP").median for a in (0.8, 1.0, 1.2)]
    assert bgp_medians[0] > bgp_medians[1] > bgp_medians[2]
    # ... while MIFO stays strictly ahead at every skew level (asserted in
    # the loop above) — the paper's qualitative Fig-6 story.
