"""Bench: regenerate Figure 9 (path-switch distribution).  Paper: 67.7% of
switching flows switch exactly once; 97.5% at most twice."""

from repro.experiments import fig9

from .conftest import write_result


def test_fig9(benchmark, results_dir, bench_scale):
    result = benchmark.pedantic(
        lambda: fig9.run(bench_scale, backend="array").raw, rounds=1, iterations=1
    )
    write_result(results_dir, "fig9", result.render())

    d = result.distribution
    assert d.switching_flows > 0
    # Paper: 67.7% switch once — accept a generous band around it.
    assert d.fraction_of_switching(1) > 0.45
    # Paper: 97.5% at most twice.
    assert d.fraction_at_most(2) > 0.80
    # Switch counts concentrate at the bottom: monotone-ish decay.
    assert d.fraction_of_switching(1) >= d.fraction_of_switching(3)
