"""Micro-benchmark of the incremental path-pooled max-min solver.

The ISSUE acceptance gate: on a fig5-scale event stream (thousands of
links, hundreds of concurrent flows, one arrival/completion/reroute per
event) the stateful :class:`~repro.flowsim.incremental.IncrementalMaxMin`
must re-solve the allocation at least **3x** faster than rebuilding the
incidence and running the cold :func:`~repro.flowsim.maxmin.maxmin_rates`
after every event — while producing the bit-identical per-link allocation
(summed into a checksum here; the exhaustive equality lives in
``tests/flowsim``).

Both sides are timed over several interleaved repetitions and the gate is
the **ratio of minima**: this machine class shows ±20% run-to-run noise,
and min-of-reps is the standard way to compare the undisturbed cost of
two deterministic loops.  Numbers land in
``results/microbench_flowsim.txt`` and ``results/BENCH_suite.json``.
"""

from __future__ import annotations

from collections import deque

import numpy as np

from repro.flowsim.incremental import IncrementalMaxMin
from repro.flowsim.maxmin import build_incidence, maxmin_rates
from repro.telemetry import Stopwatch

from .conftest import write_result

N_LINKS = 4000  # directed inter-AS links at the default (fig5) scale
N_FLOWS = 2500
CONCURRENCY = 700  # steady-state live flows
PATH_LEN = (2, 6)  # AS-hops per paper-scale interdomain path
REPS = 3
SPEEDUP_FLOOR = 3.0  # gate on the arrival-heavy (fig5-like) mix
SPEEDUP_FLOOR_REROUTE = 2.0


N_ROUTES = 900  # distinct routes flows draw from (same src/dst -> same path)


def _workload(seed: int, *, reroute_every: int = 0):
    """A (op, flow_id, path) event stream: Poisson-ish arrivals at a
    steady concurrency with FIFO completions; optionally one reroute
    (``move``) every ``reroute_every`` arrivals.  Paths come from a
    finite route set — concurrent flows between the same endpoints share
    an identical path, which is exactly what the solver pools."""
    rng = np.random.default_rng(seed)
    routes = [
        rng.choice(
            N_LINKS,
            size=int(rng.integers(PATH_LEN[0], PATH_LEN[1] + 1)),
            replace=False,
        ).tolist()
        for _ in range(N_ROUTES)
    ]

    def path():
        return routes[int(rng.integers(N_ROUTES))]

    events = []
    alive: deque[int] = deque()
    for fid in range(N_FLOWS):
        events.append(("add", fid, path()))
        alive.append(fid)
        if reroute_every and fid % reroute_every == 0:
            events.append(("move", alive[int(rng.integers(len(alive)))], path()))
        if len(alive) > CONCURRENCY:
            events.append(("remove", alive.popleft(), None))
    while alive:
        events.append(("remove", alive.popleft(), None))
    return events


def _capacity() -> np.ndarray:
    # The fluid simulator models every inter-AS link at one uniform
    # capacity (FluidSimConfig.link_capacity_bps); a spread would only
    # multiply the filling rounds both sides pay identically.
    return np.full(N_LINKS, 1000.0)


def _run_full(events, caps) -> tuple[float, float]:
    """Cold rebuild + solve after every event (the ``solver="full"`` cost
    pattern); returns (seconds, allocation checksum)."""
    live: dict[int, list[int]] = {}
    load = np.zeros(N_LINKS)
    checksum = 0.0
    sw = Stopwatch()
    for op, fid, p in events:
        if op == "remove":
            del live[fid]
        else:
            live[fid] = p
        incidence = build_incidence(list(live.values()), N_LINKS)
        maxmin_rates(incidence, caps, load_out=load)
        checksum += float(load.sum())
    return sw.elapsed, checksum


def _run_incremental(events, caps) -> tuple[float, float, IncrementalMaxMin]:
    solver = IncrementalMaxMin()
    solver.set_capacity(caps)
    checksum = 0.0
    sw = Stopwatch()
    for op, fid, p in events:
        if op == "add":
            solver.add_flow(fid, p)
        elif op == "move":
            solver.move_flow(fid, p)
        else:
            solver.remove_flow(fid)
        solver.solve()
        checksum += float(solver.link_load()[:N_LINKS].sum())
    return sw.elapsed, checksum, solver


def _bench(events, caps) -> tuple[float, float, IncrementalMaxMin]:
    """Min-of-reps seconds for (full, incremental), interleaved."""
    t_full = []
    t_inc = []
    solver = None
    for _ in range(REPS):
        tf, c_full = _run_full(events, caps)
        ti, c_inc, solver = _run_incremental(events, caps)
        assert c_inc == c_full, "allocation checksums diverged"
        t_full.append(tf)
        t_inc.append(ti)
    assert solver is not None
    return min(t_full), min(t_inc), solver


def test_incremental_beats_cold_rebuild(results_dir, bench_report):
    caps = _capacity()
    arr_events = _workload(7)
    rr_events = _workload(7, reroute_every=4)

    full_a, inc_a, solver_a = _bench(arr_events, caps)
    full_r, inc_r, solver_r = _bench(rr_events, caps)
    speedup_a = full_a / inc_a
    speedup_r = full_r / inc_r

    stats_a = solver_a.stats()
    stats_r = solver_r.stats()
    lines = [
        "Fluid max-min solver micro-benchmark (fig5-scale event stream)",
        f"  links / flows / concurrency: {N_LINKS} / {N_FLOWS} / ~{CONCURRENCY}",
        f"  reps: {REPS} (interleaved; ratio of minima)",
        "",
        f"  arrival-heavy mix ({len(arr_events)} events):",
        f"    full rebuild:   {full_a * 1e3:9.1f} ms",
        f"    incremental:    {inc_a * 1e3:9.1f} ms "
        f"({stats_a['pool_hits']} pool hits, "
        f"{stats_a['cols_reused']} columns reused)",
        f"    speedup:        {speedup_a:9.2f}x (floor {SPEEDUP_FLOOR:g}x)",
        "",
        f"  reroute-heavy mix ({len(rr_events)} events):",
        f"    full rebuild:   {full_r * 1e3:9.1f} ms",
        f"    incremental:    {inc_r * 1e3:9.1f} ms "
        f"({stats_r['pool_hits']} pool hits, "
        f"{stats_r['cols_reused']} columns reused)",
        f"    speedup:        {speedup_r:9.2f}x (floor {SPEEDUP_FLOOR_REROUTE:g}x)",
    ]
    write_result(results_dir, "microbench_flowsim", "\n".join(lines))
    bench_report(
        "micro_flowsim",
        speedup_arrival=speedup_a,
        speedup_reroute=speedup_r,
        full_arrival_ms=full_a * 1e3,
        incremental_arrival_ms=inc_a * 1e3,
        full_reroute_ms=full_r * 1e3,
        incremental_reroute_ms=inc_r * 1e3,
        pool_hits=stats_a["pool_hits"],
        cols_reused=stats_a["cols_reused"],
    )

    assert stats_a["pool_hits"] > 0, "route set produced no pooling"
    assert speedup_a >= SPEEDUP_FLOOR, "\n".join(lines)
    assert speedup_r >= SPEEDUP_FLOOR_REROUTE, "\n".join(lines)
