"""Micro-benchmarks of the hot paths.

The paper's engine runs per packet in a Linux kernel; the interesting
Python-side numbers are the per-packet forwarding cost, FIB lookup, the
max-min solver, one per-destination BGP propagation, and the diversity DP.
These use real pytest-benchmark timing (multiple rounds)."""

import numpy as np
import pytest

from repro.bgp.array_routing import compute_array_routing
from repro.bgp.parallel import ParallelRoutingEngine
from repro.bgp.propagation import RoutingCache, compute_routing
from repro.dataplane import Network, Packet
from repro.flowsim.maxmin import build_incidence, maxmin_rates
from repro.metrics.diversity import count_mifo_paths
from repro.mifo.engine import MifoEngine, MifoEngineConfig, bgp_engine
from repro.telemetry import Stopwatch
from repro.topology.generator import TopologyConfig, generate_topology
from repro.topology.relationships import Relationship

from .conftest import write_result


@pytest.fixture(scope="module")
def graph():
    return generate_topology(TopologyConfig(n_ases=1200))


class TestRoutingMicro:
    def test_per_destination_propagation(self, benchmark, graph):
        dests = iter(range(0, len(graph)))

        def run():
            return compute_routing(graph, next(dests))

        routing = benchmark(run)
        assert routing.reachable_count() == len(graph)

    def test_per_destination_propagation_array(self, benchmark, graph):
        graph.csr()  # built once per graph; time the per-destination cost
        dests = iter(range(0, len(graph)))

        def run():
            return compute_array_routing(graph, next(dests))

        routing = benchmark(run)
        assert routing.reachable_count() == len(graph)


class TestRoutingBackendComparison:
    """The ISSUE-1 acceptance benchmark: the parallel array backend must
    converge >=200 destinations on the bench-scale topology (1,200 ASes)
    measurably faster than the serial dict backend.  Numbers land in
    ``results/microbench_routing.txt`` and EXPERIMENTS.md."""

    N_DESTS = 200

    def test_parallel_array_beats_serial_dict(self, graph, results_dir):
        dests = list(range(self.N_DESTS))
        graph.csr()  # both paths get a warm adjacency

        sw = Stopwatch()
        for d in dests:
            compute_routing(graph, d)
        t_dict = sw.elapsed

        sw.restart()
        serial_array = {d: compute_array_routing(graph, d) for d in dests}
        t_array = sw.elapsed

        engine = ParallelRoutingEngine(graph, n_workers=None)  # one per CPU
        sw.restart()
        parallel = engine.compute_many(dests)
        t_parallel = sw.elapsed

        # same answers, whatever the substrate or worker count
        probe = dests[self.N_DESTS // 2]
        assert parallel[probe].best_path(1100) == serial_array[probe].best_path(1100)

        report = (
            f"routing backends, {self.N_DESTS} destinations, "
            f"{len(graph)} ASes (bench scale)\n"
            f"  serial dict     : {t_dict:8.3f} s "
            f"({t_dict / self.N_DESTS * 1e3:6.2f} ms/dest)\n"
            f"  serial array    : {t_array:8.3f} s "
            f"({t_array / self.N_DESTS * 1e3:6.2f} ms/dest)  "
            f"{t_dict / t_array:4.1f}x vs dict\n"
            f"  parallel array  : {t_parallel:8.3f} s "
            f"({t_parallel / self.N_DESTS * 1e3:6.2f} ms/dest)  "
            f"{t_dict / t_parallel:4.1f}x vs dict "
            f"({engine.effective_workers} worker(s))\n"
        )
        write_result(results_dir, "microbench_routing", report)

        assert t_parallel < t_dict, (t_parallel, t_dict)
        assert t_array < t_dict, (t_array, t_dict)

    def test_rib_construction(self, benchmark, graph):
        routing = compute_routing(graph, 0)
        nodes = list(graph.nodes())

        def run():
            total = 0
            for x in nodes[::10]:
                total += len(routing.rib(x))
            return total

        assert benchmark(run) > 0


class TestDiversityMicro:
    def test_count_paths_dp(self, benchmark, graph):
        rc = RoutingCache(graph)
        capable = frozenset(graph.nodes())
        rc(0)  # warm the cache: we time the DP, not BGP convergence.

        def run():
            return count_mifo_paths(graph, rc, capable, len(graph) - 1, 0)

        assert benchmark(run) >= 1


class TestMaxminMicro:
    def test_solver_200_flows(self, benchmark):
        rng = np.random.default_rng(0)
        n_links, n_flows = 400, 200
        flow_links = [
            sorted(rng.choice(n_links, size=5, replace=False).tolist())
            for _ in range(n_flows)
        ]
        inc = build_incidence(flow_links, n_links)
        caps = np.full(n_links, 1e9)

        rates = benchmark(lambda: maxmin_rates(inc, caps))
        assert rates.shape == (n_flows,)


class TestForwardingMicro:
    def _wire(self, engine):
        net = Network()
        r = net.add_router("R", 2, engine)
        a = net.add_router("A", 1, lambda *_: None)
        b = net.add_router("B", 3, lambda *_: None)
        c = net.add_router("C", 4, lambda *_: None)
        _, r_in = net.connect_routers(a, r, relationship_of_b=Relationship.PROVIDER)
        r_out, _ = net.connect_routers(r, b, relationship_of_b=Relationship.PROVIDER)
        r_alt, _ = net.connect_routers(r, c, relationship_of_b=Relationship.CUSTOMER)
        r.fib.install("D", r_out, r_alt)
        return net, r, r_in

    def test_bgp_engine_per_packet(self, benchmark):
        net, r, r_in = self._wire(bgp_engine)

        def run():
            p = Packet(flow_id=1, seq=0, src="S", dst="D", size=1000)
            r.receive(p, r_in)
            net.sim.run()

        benchmark(run)

    def test_mifo_engine_per_packet(self, benchmark):
        net, r, r_in = self._wire(MifoEngine(MifoEngineConfig()))

        def run():
            p = Packet(flow_id=1, seq=0, src="S", dst="D", size=1000)
            r.receive(p, r_in)
            net.sim.run()

        benchmark(run)

    def test_fib_lookup(self, benchmark):
        net, r, _r_in = self._wire(bgp_engine)
        fib = r.fib
        for i in range(500):
            fib.install(f"P{i}", r.ports[0])

        benchmark(lambda: fib.lookup("P250"))

    def test_fib_lookup_at_internet_scale(self, benchmark):
        """The paper notes a current BGP table holds ~500K prefixes /
        ~50K AS-level targets (Section III-C): the FIB lookup must stay
        O(1) at that size."""
        net, r, _r_in = self._wire(bgp_engine)
        fib = r.fib
        for i in range(50_000):
            fib.install(f"P{i}", r.ports[0])

        benchmark(lambda: fib.lookup("P25000"))


class TestPacketSimMicro:
    def test_testbed_event_throughput(self, benchmark):
        """End-to-end DES speed: events/second on the Fig-11 testbed."""
        from repro.experiments import fig12

        def run():
            cfg = fig12.TestbedConfig(
                flows_per_source=2, flow_size_bytes=2e6, sample_interval_s=0.05
            )
            result = fig12._run_one(cfg, mifo=True)
            return result

        result = benchmark.pedantic(run, rounds=1, iterations=1)
        assert len(result.completion_times) == 4
