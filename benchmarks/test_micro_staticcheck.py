"""Micro-benchmark of the mifocheck whole-program analyzer.

mifocheck runs as a CI gate over ``src/repro``, so its cost must stay
far below the test suite it accompanies.  This bench runs all four
passes in-process, asserts the shipped tree is finding-free and the
full run finishes well under the CI budget, writes the summary to
``results/staticcheck.txt``, and appends runtime + findings count to
``results/BENCH_suite.json``.
"""


from repro.telemetry import Stopwatch

from tools.mifocheck import default_config, run_passes
from tools.mifocheck.passes import RULES

from .conftest import write_result

CI_BUDGET_S = 30.0


class TestStaticAnalysisGate:
    def test_full_run_is_clean_and_fast(self, results_dir, bench_report):
        cfg = default_config()
        sw = Stopwatch()
        pairs, program = run_passes(cfg)
        elapsed = sw.elapsed

        findings = [f for f, _text in pairs]
        assert findings == [], [f.render() for f in findings]
        assert elapsed < CI_BUDGET_S, elapsed

        per_pass = []
        for code in sorted(RULES):
            sw.restart()
            run_passes(cfg, select={code}, program=program)
            per_pass.append((code, sw.elapsed))

        lines = [
            "mifocheck whole-program analysis over src/repro",
            f"  modules analyzed : {len(program.modules)}",
            f"  findings         : {len(findings)}",
            f"  wall time (s)    : {elapsed:.3f}  (parse + all passes)",
        ]
        for code, dt in per_pass:
            lines.append(f"    {code} re-run on parsed program : {dt:.4f}s")
        write_result(results_dir, "staticcheck", "\n".join(lines))
        bench_report(
            "staticcheck",
            runtime_s=round(elapsed, 4),
            findings=len(findings),
            modules=len(program.modules),
        )
