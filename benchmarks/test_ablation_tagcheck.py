"""Ablation bench: what the paper's two loop-prevention mechanisms buy.

1. Tag-Check OFF → the Fig-2(a) deflection loop appears (counted as
   LoopDetectedError walks at the AS level / TTL deaths at packet level).
2. IP-in-IP OFF → the Fig-2(b) iBGP ping-pong cycle appears.

Both are the DESIGN.md-declared ablations of Section III's design choices.
"""

import numpy as np
import pytest

from repro.bgp.propagation import RoutingCache
from repro.errors import LoopDetectedError
from repro.mifo.deflection import MifoPathBuilder
from repro.topology.generator import TopologyConfig, generate_topology

from .conftest import write_result


@pytest.fixture(scope="module")
def graph():
    return generate_topology(TopologyConfig(n_ases=600, seed=21))


def _loop_rate(graph, *, tag_check: bool, n_pairs: int = 300, congestion_p: float = 0.5):
    """Fraction of (pair, congestion-pattern) trials whose walk loops."""
    rc = RoutingCache(graph)
    capable = frozenset(graph.nodes())
    builder = MifoPathBuilder(
        graph,
        rc,
        capable,
        tag_check_enabled=tag_check,
        deflect_uncongested_only=False,
    )
    rng = np.random.default_rng(5)
    nodes = np.fromiter(graph.nodes(), dtype=np.int64)
    dests = rng.choice(nodes, size=12, replace=False)
    loops = 0
    trials = 0
    for d in dests:
        d = int(d)
        congested_set = {
            (u, v)
            for u in graph.nodes()
            for v in graph.neighbors(u)
            if rng.random() < congestion_p
        }
        srcs = rng.choice(nodes, size=n_pairs // 12, replace=False)
        for s in srcs:
            s = int(s)
            if s == d or not rc(d).has_route(s):
                continue
            trials += 1
            try:
                builder.build_path(
                    s,
                    d,
                    lambda u, v: (u, v) in congested_set,
                    lambda u, v: float((u * 7 + v) % 13),
                )
            except LoopDetectedError:
                loops += 1
    return loops / max(trials, 1), trials


def test_ablation_tag_check(benchmark, results_dir):
    graph = generate_topology(TopologyConfig(n_ases=600, seed=21))

    def run():
        with_check, trials_a = _loop_rate(graph, tag_check=True)
        without_check, trials_b = _loop_rate(graph, tag_check=False)
        return with_check, without_check, trials_a + trials_b

    with_check, without_check, trials = benchmark.pedantic(run, rounds=1, iterations=1)

    rendered = (
        "Ablation: valley-free Tag-Check (paper Section III-A)\n"
        f"trials: {trials} random (src,dst,congestion) walks, all ASes deflecting\n"
        f"loop rate WITH Tag-Check:    {with_check:.4f}  (theorem: must be 0)\n"
        f"loop rate WITHOUT Tag-Check: {without_check:.4f}\n"
    )
    write_result(results_dir, "ablation_tagcheck", rendered)

    assert with_check == 0.0  # the paper's Theorem, measured
    assert without_check > 0.01  # the rule is load-bearing
