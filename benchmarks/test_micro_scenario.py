"""Micro-benchmark of the incremental scenario engine.

The ISSUE acceptance gate: for single-link events at the default
synthetic scale (2,000 ASes), the incremental mode (dirty-set
re-propagation + rebased clean destinations + memoized max-min solves)
must process the timeline at least **3x** faster than the
recompute-everything baseline.  The showcase timeline is ``edge_flap`` —
a small peering link whose dirty set is provably tiny — since that is
where real interdomain churn concentrates.  Numbers land in
``results/microbench_scenario.txt``.
"""


import pytest

from repro.scenario.engine import ScenarioConfig, ScenarioEngine
from repro.scenario.events import get_scenario
from repro.telemetry import Stopwatch
from repro.topology.generator import TopologyConfig, generate_topology
from repro.traffic.matrix import TrafficConfig, uniform_matrix

from .conftest import write_result

N_ASES = 2000  # the "default" experiment scale
N_FLOWS = 240
SPEEDUP_FLOOR = 3.0


@pytest.fixture(scope="module")
def graph():
    return generate_topology(TopologyConfig(n_ases=N_ASES))


@pytest.fixture(scope="module")
def demands(graph):
    return uniform_matrix(graph, TrafficConfig(n_flows=N_FLOWS, seed=77))


def _timeline_seconds(graph, demands, mode: str) -> tuple[float, ScenarioEngine]:
    """Initial routing excluded: both modes pay it identically, and the
    acceptance criterion is about *event* processing."""
    spec = get_scenario("edge_flap")
    engine = ScenarioEngine(
        graph,
        demands,
        spec,
        config=ScenarioConfig(mode=mode, verify=False),
    )
    engine.step(0.0, None)
    sw = Stopwatch()
    for when, ev in spec.timeline:
        engine.step(when, ev)
    return sw.elapsed, engine


class TestScenarioIncremental:
    def test_incremental_beats_full_recompute(self, graph, demands, results_dir):
        t_full, eng_full = _timeline_seconds(graph, demands, "full")
        t_inc, eng_inc = _timeline_seconds(graph, demands, "incremental")

        # Identical observable outcomes (the cross-validation contract).
        assert eng_inc.records == eng_full.records

        speedup = t_full / t_inc
        n_events = len(get_scenario("edge_flap").timeline)
        lines = [
            "Scenario engine micro-benchmark (edge_flap: single-link events)",
            f"  topology:          {N_ASES} ASes, {N_FLOWS} flows",
            f"  timeline events:   {n_events}",
            f"  full recompute:    {t_full * 1e3:8.1f} ms "
            f"({eng_full.routing.dests_recomputed} dests re-converged)",
            f"  incremental:       {t_inc * 1e3:8.1f} ms "
            f"({eng_inc.routing.dests_recomputed} re-converged, "
            f"{eng_inc.routing.dests_rebased} rebased, "
            f"{eng_inc.solver.hits} solver memo hits)",
            f"  speedup:           {speedup:8.1f}x (floor {SPEEDUP_FLOOR:g}x)",
        ]
        write_result(results_dir, "microbench_scenario", "\n".join(lines))

        assert eng_inc.routing.dests_recomputed < eng_full.routing.dests_recomputed
        assert speedup >= SPEEDUP_FLOOR, "\n".join(lines)
