"""Bench: regenerate Figure 8 (traffic offloaded to alternative paths vs
MIFO deployment ratio).  Paper: ~50% of flows ride alternatives at full
deployment; ~9% already at 10% deployment."""

import numpy as np

from repro.experiments import fig8

from .conftest import write_result


def test_fig8(benchmark, results_dir, bench_scale):
    result = benchmark.pedantic(
        lambda: fig8.run(bench_scale, backend="array").raw, rounds=1, iterations=1
    )
    write_result(results_dir, "fig8", result.render())

    deps = sorted(result.results)
    offloads = [result.offload(d) for d in deps]
    # Broadly increasing in deployment (allow small local noise).
    assert offloads[-1] > offloads[0]
    smoothed = np.maximum.accumulate(offloads)
    assert np.all(np.asarray(offloads) >= smoothed - 0.08)
    # Full deployment offloads a substantial share; 10% a visible one.
    assert result.offload(1.0) > 0.25
    assert result.offload(0.1) > 0.01
