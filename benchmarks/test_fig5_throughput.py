"""Bench: regenerate Figure 5 (throughput CDFs by deployment, uniform
traffic) and assert the paper's ordering: MIFO >= MIRO >= ~BGP at every
deployment ratio, with gains shrinking as deployment shrinks."""

from repro.experiments import fig5

from .conftest import write_result


def test_fig5(benchmark, results_dir, bench_scale):
    result = benchmark.pedantic(
        lambda: fig5.run(bench_scale, backend="array").raw, rounds=1, iterations=1
    )
    write_result(results_dir, "fig5", result.render())

    bgp = result.cdf(1.0, "BGP")
    for dep in (1.0, 0.5, 0.1):
        mifo = result.cdf(dep, "MIFO")
        miro = result.cdf(dep, "MIRO")
        # Multipath never loses to single-path (allowing small noise).
        assert mifo.median >= bgp.median * 0.97, (dep, mifo.median, bgp.median)
        assert miro.median >= bgp.median * 0.97, (dep, miro.median, bgp.median)
    # Full deployment: MIFO leads MIRO (the paper's headline gap).
    assert result.cdf(1.0, "MIFO").median >= result.cdf(1.0, "MIRO").median
    # Gains grow with deployment.
    assert (
        result.cdf(1.0, "MIFO").median
        >= result.cdf(0.1, "MIFO").median * 0.97
    )
