"""Bench: regenerate Figure 12 (testbed aggregate throughput + FCT CDF).

Paper: BGP 0.94 Gb/s vs MIFO ~1.7 Gb/s aggregate (+81%); all MIFO flows
finish within ~1.1 s while 80% of BGP flows take > 1.6 s; total makespan
30 s (MIFO) vs 51 s (BGP) — a 0.59 ratio."""

import numpy as np

from repro.experiments import fig12

from .conftest import write_result


def test_fig12(benchmark, results_dir):
    result = benchmark.pedantic(lambda: fig12.run().raw, rounds=1, iterations=1)
    write_result(results_dir, "fig12", result.render())

    # BGP pinned at the single 1 Gb/s bottleneck.
    assert 0.80e9 <= result.bgp.mean_aggregate_bps <= 1.02e9
    # MIFO exploits the second path.
    assert result.mifo.mean_aggregate_bps >= 1.4e9
    # Improvement in the paper's band (+81%; accept 50-110%).
    assert 0.50 <= result.improvement <= 1.10
    # Makespan ratio near the paper's 30/51 ~= 0.59.
    ratio = result.mifo.finish_time / result.bgp.finish_time
    assert 0.45 <= ratio <= 0.75
    # FCT tail: MIFO's slowest flow beats BGP's 80th percentile (paper
    # Fig 12(b): all MIFO flows < 1.1 s, 80% of BGP flows > 1.6 s).
    assert max(result.mifo.completion_times) <= np.percentile(
        result.bgp.completion_times, 80
    ) * 1.5
