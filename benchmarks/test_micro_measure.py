"""Micro-benchmark of the measurement subsystem.

Two overhead gates at the default experiment scale (2,000 ASes), both
comparing a full scenario run (initial routing + timeline) with
detection enabled against the same run with the ``oracle`` detector
(detection disabled):

* **ride-along** — the ISSUE acceptance gate: on a routing-dominated
  timeline (``edge_flap``) the changepoint detector must add **<5%**
  wall clock.  Quiet series never build the PELT dynamic program (the
  homogeneity bound in ``repro.measure.changepoint``), so detection
  rides along nearly for free.
* **measurement stress** — ``rtt_replay`` is 32 measurement ticks
  around three planted shifts: the worst case, where the oracle run
  does almost nothing per tick while detection samples and pushes
  every flow every epoch.  The threshold detector must still stay
  under 5%; exact windowed PELT on the genuinely-shifting series pays
  real CPU and gets a looser 15% ceiling (measured ~7-9%).

Detection quality at bench scale (precision/recall/delay vs the
planted truths) and sample throughput land in
``results/microbench_measure.txt`` and ``results/BENCH_suite.json``.
"""

import pytest

from repro import telemetry as tm
from repro.measure.eval import (
    detections_from_trace,
    planted_changepoints,
    score_changepoints,
)
from repro.scenario.engine import ScenarioConfig, ScenarioEngine
from repro.scenario.events import get_scenario
from repro.telemetry import Stopwatch, Telemetry
from repro.topology.generator import TopologyConfig, generate_topology
from repro.traffic.matrix import TrafficConfig, uniform_matrix

from .conftest import write_result

N_ASES = 2000  # the "default" experiment scale
N_FLOWS = 240
REPS = 3  # interleaved min-of-N absorbs machine jitter
RIDE_ALONG_CEILING_PCT = 5.0
STRESS_THRESHOLD_CEILING_PCT = 5.0
STRESS_CHANGEPOINT_CEILING_PCT = 15.0
RECALL_FLOOR = 0.9
PRECISION_FLOOR = 0.5


@pytest.fixture(scope="module")
def graph():
    return generate_topology(TopologyConfig(n_ases=N_ASES))


@pytest.fixture(scope="module")
def demands(graph):
    return uniform_matrix(graph, TrafficConfig(n_flows=N_FLOWS, seed=77))


def _run_seconds(graph, demands, scenario: str, detector: str) -> float:
    """One full scenario run: initial routing + the whole timeline."""
    spec = get_scenario(scenario)
    engine = ScenarioEngine(
        graph,
        demands,
        spec,
        config=ScenarioConfig(mode="incremental", verify=False, detector=detector),
    )
    sw = Stopwatch()
    engine.step(0.0, None)
    for when, ev in spec.timeline:
        engine.step(when, ev)
    return sw.elapsed


def _best_runs(graph, demands, scenario: str, detectors: tuple[str, ...]) -> dict[str, float]:
    """Min-of-REPS per detector, interleaved so load drift cancels."""
    best = {d: float("inf") for d in detectors}
    for _ in range(REPS):
        for d in detectors:
            best[d] = min(best[d], _run_seconds(graph, demands, scenario, d))
    return best


def _overhead_pct(enabled: float, disabled: float) -> float:
    return 100.0 * (enabled - disabled) / disabled


@pytest.fixture(scope="module")
def stress(graph, demands):
    return _best_runs(graph, demands, "rtt_replay", ("oracle", "threshold", "changepoint"))


class TestMeasureOverhead:
    def test_ride_along_overhead_under_five_percent(
        self, graph, demands, results_dir, bench_report
    ):
        best = _best_runs(graph, demands, "edge_flap", ("oracle", "changepoint"))
        pct = _overhead_pct(best["changepoint"], best["oracle"])
        lines = [
            "Measurement micro-benchmark (ride-along: edge_flap timeline)",
            f"  topology:            {N_ASES} ASes, {N_FLOWS} flows",
            f"  detection disabled:  {best['oracle'] * 1e3:8.1f} ms",
            f"  changepoint:         {best['changepoint'] * 1e3:8.1f} ms "
            f"({pct:+.1f}%, ceiling {RIDE_ALONG_CEILING_PCT:g}%)",
        ]
        write_result(results_dir, "microbench_measure_ride_along", "\n".join(lines))
        bench_report(
            "measure_ride_along",
            oracle_s=best["oracle"],
            changepoint_s=best["changepoint"],
            overhead_pct=pct,
        )
        assert pct < RIDE_ALONG_CEILING_PCT, "\n".join(lines)

    def test_stress_overhead_within_ceilings(self, stress, results_dir, bench_report):
        thr_pct = _overhead_pct(stress["threshold"], stress["oracle"])
        cp_pct = _overhead_pct(stress["changepoint"], stress["oracle"])
        n_events = len(get_scenario("rtt_replay").timeline) + 1
        samples = N_FLOWS * n_events
        lines = [
            "Measurement micro-benchmark (stress: rtt_replay timeline)",
            f"  topology:            {N_ASES} ASes, {N_FLOWS} flows",
            f"  detection disabled:  {stress['oracle'] * 1e3:8.1f} ms",
            f"  threshold:           {stress['threshold'] * 1e3:8.1f} ms "
            f"({thr_pct:+.1f}%, ceiling {STRESS_THRESHOLD_CEILING_PCT:g}%)",
            f"  changepoint:         {stress['changepoint'] * 1e3:8.1f} ms "
            f"({cp_pct:+.1f}%, ceiling {STRESS_CHANGEPOINT_CEILING_PCT:g}%)",
            f"  samples per second:  {samples / stress['changepoint']:8.0f} "
            f"({samples} samples, changepoint run)",
        ]
        write_result(results_dir, "microbench_measure_stress", "\n".join(lines))
        bench_report(
            "measure_stress",
            oracle_s=stress["oracle"],
            threshold_s=stress["threshold"],
            changepoint_s=stress["changepoint"],
            threshold_overhead_pct=thr_pct,
            changepoint_overhead_pct=cp_pct,
            samples_per_s=samples / stress["changepoint"],
        )
        assert thr_pct < STRESS_THRESHOLD_CEILING_PCT, "\n".join(lines)
        assert cp_pct < STRESS_CHANGEPOINT_CEILING_PCT, "\n".join(lines)


class TestDetectionQualityAtBenchScale:
    @pytest.mark.parametrize("detector", ["threshold", "changepoint"])
    def test_recall_and_precision(
        self, graph, demands, detector, results_dir, bench_report
    ):
        spec = get_scenario("rtt_replay")
        telem = Telemetry()
        tm.activate(telem)
        try:
            engine = ScenarioEngine(
                graph,
                demands,
                spec,
                config=ScenarioConfig(mode="incremental", verify=False, detector=detector),
            )
            sw = Stopwatch()
            engine.step(0.0, None)
            for when, ev in spec.timeline:
                engine.step(when, ev)
            elapsed = sw.elapsed
        finally:
            tm.activate(None)
        events = telem.trace_events()
        score = score_changepoints(
            detections_from_trace(events), planted_changepoints(spec)
        )
        samples = telem.counters["measure.rtt_samples"]
        lines = [
            f"Detection quality at bench scale ({detector}, rtt_replay)",
            f"  topology:   {N_ASES} ASes, {N_FLOWS} flows",
            f"  precision:  {score.precision:.3f} (floor {PRECISION_FLOOR:g})",
            f"  recall:     {score.recall:.3f} (floor {RECALL_FLOOR:g})",
            f"  mean delay: {score.mean_delay_epochs:.2f} epochs",
            f"  samples:    {samples} ({samples / elapsed:.0f}/s with tracing)",
        ]
        write_result(results_dir, f"microbench_measure_{detector}", "\n".join(lines))
        bench_report(
            f"measure_quality_{detector}",
            precision=score.precision,
            recall=score.recall,
            mean_delay_epochs=score.mean_delay_epochs,
            samples_per_s=samples / elapsed,
        )
        assert score.recall >= RECALL_FLOOR, "\n".join(lines)
        assert score.precision >= PRECISION_FLOOR, "\n".join(lines)
