"""Shared fixtures for the benchmark suite.

Every per-figure bench (a) regenerates the corresponding paper artifact at
``bench`` scale, (b) writes the rendered table/series to
``results/<name>.txt`` next to this directory, and (c) asserts the paper's
qualitative headline.  ``pytest benchmarks/ --benchmark-only`` therefore
doubles as the repository's reproduction run.
"""

from __future__ import annotations

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).resolve().parent.parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture(scope="session")
def bench_scale() -> str:
    return "bench"


def write_result(results_dir: pathlib.Path, name: str, rendered: str) -> None:
    (results_dir / f"{name}.txt").write_text(rendered + "\n", encoding="utf-8")
