"""Shared fixtures for the benchmark suite.

Every per-figure bench (a) regenerates the corresponding paper artifact at
``bench`` scale, (b) writes the rendered table/series to
``results/<name>.txt`` next to this directory, and (c) asserts the paper's
qualitative headline.  ``pytest benchmarks/ --benchmark-only`` therefore
doubles as the repository's reproduction run.
"""

from __future__ import annotations

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).resolve().parent.parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture(scope="session")
def bench_scale() -> str:
    return "bench"


def write_result(results_dir: pathlib.Path, name: str, rendered: str) -> None:
    (results_dir / f"{name}.txt").write_text(rendered + "\n", encoding="utf-8")


@pytest.fixture(scope="session")
def bench_report(results_dir: pathlib.Path):
    """Machine-readable counterpart of ``write_result``.

    Benchmarks call the yielded function with a name plus numeric fields;
    each call appends one timestamped record to ``results/BENCH_suite.json``
    (via :func:`repro.telemetry.perf.append_bench_record`), so repeated
    benchmark runs accumulate a queryable performance trajectory.
    """
    from repro.telemetry.perf import append_bench_record

    path = results_dir / "BENCH_suite.json"

    def record(name: str, **fields: object) -> None:
        append_bench_record(path, {"bench": name, **fields})

    return record
