"""Ablation bench: greedy spare-capacity alternative selection (paper
Section III-C) versus naive policies ("first" RIB preference, "random").

The greedy rule is a design choice the paper justifies by real-time local
observability; this bench quantifies what it buys in end-to-end
throughput on the same workload.
"""

import numpy as np

from repro.bgp.propagation import RoutingCache
from repro.flowsim.providers import MifoProvider
from repro.flowsim.simulator import FluidSimConfig, FluidSimulator
from repro.mifo.deflection import MifoPathBuilder
from repro.topology.generator import TopologyConfig, generate_topology
from repro.traffic.matrix import TrafficConfig, uniform_matrix

from .conftest import write_result


def test_ablation_alt_selection(benchmark, results_dir):
    graph = generate_topology(TopologyConfig(n_ases=1200))
    specs = uniform_matrix(
        graph, TrafficConfig(n_flows=1000, arrival_rate=1200.0, seed=31)
    )
    capable = frozenset(graph.nodes())
    rc = RoutingCache(graph)

    def run_policy(policy: str):
        builder = MifoPathBuilder(graph, rc, capable, alt_selection=policy)
        sim = FluidSimulator(graph, MifoProvider(builder), FluidSimConfig())
        res = sim.run(specs)
        return float(np.median(res.throughputs_bps()))

    def run_all():
        return {p: run_policy(p) for p in ("greedy", "first", "random")}

    medians = benchmark.pedantic(run_all, rounds=1, iterations=1)

    rendered = (
        "Ablation: alternative-path selection policy (paper Section III-C)\n"
        + "\n".join(
            f"median flow throughput [{p:>6s}]: {v / 1e6:7.1f} Mbps"
            for p, v in medians.items()
        )
        + "\n"
    )
    write_result(results_dir, "ablation_altselect", rendered)

    # Greedy must not lose to the naive policies (small tolerance for the
    # stochastic workload).
    assert medians["greedy"] >= medians["first"] * 0.95
    assert medians["greedy"] >= medians["random"] * 0.95
