"""Bench: regenerate Table I (topology attributes)."""

import pytest

from repro.experiments import table1

from .conftest import write_result


def test_table1(benchmark, results_dir, bench_scale):
    result = benchmark.pedantic(
        lambda: table1.run(bench_scale).raw, rounds=1, iterations=1
    )
    rendered = result.render()
    write_result(results_dir, "table1", rendered)
    # Paper: 69% P/C, 31% peering.
    assert result.stats.p2c_fraction == pytest.approx(0.69, abs=0.03)
    assert result.stats.peering_fraction == pytest.approx(0.31, abs=0.03)
    # Link-to-node ratio in the paper is ~2.47; generator lands nearby.
    ratio = result.stats.n_links / result.stats.n_nodes
    assert 1.5 < ratio < 4.0
