"""Micro-benchmark of the static forwarding-state verifier.

The verifier is meant to run as a post-experiment gate, so its cost must
stay a small fraction of the runs it guards.  This bench times
``verify_routing`` across growing synthetic topologies (fixed destination
count, so the x-axis is graph size, not workload size), records wall time
alongside the explored tagged-deflection-relation size, and writes the
table to ``results/microbench_verify.txt``.
"""


import pytest

from repro.bgp.propagation import RoutingCache
from repro.telemetry import Stopwatch
from repro.topology.generator import TopologyConfig, generate_topology
from repro.verify import verify_routing

from .conftest import write_result

N_DESTS = 16
SIZES = (200, 400, 800, 1600)


def _verify_at(n_ases: int):
    graph = generate_topology(TopologyConfig(n_ases=n_ases))
    routing = RoutingCache(graph)
    dests = range(N_DESTS)
    for d in dests:  # converge outside the timed region
        routing(d)
    capable = frozenset(graph.nodes())

    sw = Stopwatch()
    report = verify_routing(graph, routing, dests, capable=capable)
    elapsed = sw.elapsed
    return graph, report, elapsed


class TestVerifierScaling:
    def test_wall_time_vs_graph_size(self, results_dir):
        rows = []
        for n in SIZES:
            graph, report, elapsed = _verify_at(n)
            assert report.ok, report.render()
            rows.append((len(graph), report.n_states, report.n_edges, elapsed))

        lines = [
            f"static verifier scaling, {N_DESTS} destinations per graph",
            f"  {'ASes':>6} {'states':>9} {'edges':>10} {'wall (s)':>9} "
            f"{'us/edge':>8}",
        ]
        for n_ases, n_states, n_edges, elapsed in rows:
            lines.append(
                f"  {n_ases:>6} {n_states:>9} {n_edges:>10} {elapsed:>9.3f} "
                f"{elapsed / max(n_edges, 1) * 1e6:>8.2f}"
            )
        write_result(results_dir, "microbench_verify", "\n".join(lines))

        # The relation is bounded by 2 * |AS| states per destination, so
        # cost must grow roughly linearly: per-edge time may not blow up
        # as graphs grow.
        per_edge = [e / max(m, 1) for _, _, m, e in rows]
        assert per_edge[-1] < per_edge[0] * 10, per_edge

    def test_single_destination_cost(self, benchmark):
        graph = generate_topology(TopologyConfig(n_ases=400))
        routing = RoutingCache(graph)
        capable = frozenset(graph.nodes())
        dests = iter(range(len(graph)))
        for d in range(64):  # pre-converge the destinations we will verify
            routing(d)

        def run():
            return verify_routing(
                graph, routing, [next(dests) % 64], capable=capable
            )

        report = benchmark(run)
        assert report.ok


@pytest.mark.parametrize("tag_check_enabled", [True, False])
def test_ablation_cost_comparable(tag_check_enabled):
    """Verifying with Tag-Check disabled explores a denser relation but
    must stay the same order of magnitude (it is the ablation gate)."""
    graph = generate_topology(TopologyConfig(n_ases=200))
    routing = RoutingCache(graph)
    for d in range(8):
        routing(d)
    sw = Stopwatch()
    verify_routing(
        graph,
        routing,
        range(8),
        capable=frozenset(graph.nodes()),
        tag_check_enabled=tag_check_enabled,
    )
    assert sw.elapsed < 30.0
