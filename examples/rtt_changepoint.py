#!/usr/bin/env python3
"""Measurement-driven deflection walkthrough: detect congestion from
RTT series alone, then check the detections against the planted truth.

Plays the built-in ``rtt_replay`` timeline — three congestion onsets
(engine epochs 9, 18, 27) separated by quiet measurement ticks — on a
200-AS synthetic Internet three times: once with the ``oracle``
detector (deflection driven by link-utilization hysteresis, the
fluid-level ground truth) and once each with the measurement-driven
``threshold`` and ``changepoint`` detectors, which see nothing but the
per-flow RTT samples synthesized by ``repro.measure.rtt``.  For each
measurement run it scores the raised alarms against the planted shift
epochs (windowed precision / recall / detection delay,
``repro.measure.eval``) and correlates the observed path churn with the
timeline (``repro.measure.pathwatch``): every switch should land just
after a planted onset — alignment 1.0 means no unexplained churn.

Run:  python examples/rtt_changepoint.py
"""

from repro import telemetry as tm
from repro.measure.eval import (
    detections_from_trace,
    planted_changepoints,
    score_changepoints,
)
from repro.measure.pathwatch import watch_paths
from repro.scenario.engine import ScenarioConfig, ScenarioEngine
from repro.scenario.events import get_scenario
from repro.telemetry import Telemetry
from repro.topology.generator import TopologyConfig, generate_topology
from repro.traffic.matrix import TrafficConfig, uniform_matrix


def play(graph, demands, detector: str):
    """One rtt_replay run; returns (records, trace events, counters)."""
    telem = Telemetry()
    tm.activate(telem)
    try:
        engine = ScenarioEngine(
            graph,
            demands,
            get_scenario("rtt_replay"),
            config=ScenarioConfig(detector=detector, verify=False),
        )
        run = engine.run()
    finally:
        tm.activate(None)
    return run.records, telem.trace_events(), dict(telem.counters)


def main() -> None:
    graph = generate_topology(TopologyConfig(n_ases=200, seed=2014))
    demands = uniform_matrix(graph, TrafficConfig(n_flows=60, seed=77))
    truths = planted_changepoints(get_scenario("rtt_replay"))
    print(f"rtt_replay plants congestion onsets at epochs {list(truths)}\n")

    deflected = {}
    for detector in ("oracle", "threshold", "changepoint"):
        records, events, counters = play(graph, demands, detector)
        deflected[detector] = sum(r.deflected_flows for r in records)
        print(f"detector={detector}: {deflected[detector]} deflection(s)")
        if detector == "oracle":
            continue  # the oracle reads utilization; nothing to score

        score = score_changepoints(detections_from_trace(events), truths)
        print(
            f"  {counters['measure.rtt_samples']} RTT samples, "
            f"{counters['measure.alarms']} alarm(s) -> "
            f"precision {score.precision:.2f}, recall {score.recall:.2f}, "
            f"mean delay {score.mean_delay_epochs:.2f} epoch(s)"
        )
        report = watch_paths(events)
        print(
            f"  path churn: {report.switch_events} switch(es) across "
            f"{len(report.switches_by_flow)} flow(s), "
            f"alignment {report.alignment:.2f} "
            "(1.0 = every switch follows a planted onset)"
        )

    # The operational contract: detectors that only see measurements
    # still move traffic when (and only when) the network degrades.
    assert deflected["threshold"] > 0 and deflected["changepoint"] > 0
    print("\nboth measurement-driven detectors deflected traffic"
          " without reading oracle link state")


if __name__ == "__main__":
    main()
