#!/usr/bin/env python3
"""Quickstart: MIFO vs BGP on a small synthetic Internet.

Generates a 500-AS topology, runs the same 600-flow uniform workload under
conventional BGP and under fully deployed MIFO, and prints the throughput
distribution of each — the smallest end-to-end demonstration of what the
paper's mechanism buys.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.bgp import RoutingCache
from repro.flowsim import BgpProvider, FluidSimConfig, FluidSimulator, MifoProvider
from repro.mifo import MifoPathBuilder
from repro.topology import TopologyConfig, generate_topology, topology_stats
from repro.traffic import TrafficConfig, uniform_matrix


def main() -> None:
    # 1. A synthetic Internet matched to the paper's Table-I statistics.
    graph = generate_topology(TopologyConfig(n_ases=500, seed=42))
    stats = topology_stats(graph)
    print(
        f"topology: {stats.n_nodes} ASes, {stats.n_links} links "
        f"({stats.p2c_fraction:.0%} provider-customer, "
        f"{stats.peering_fraction:.0%} peering)"
    )

    # 2. One workload, two forwarding schemes.
    specs = uniform_matrix(
        graph, TrafficConfig(n_flows=600, arrival_rate=800.0, seed=7)
    )
    routing = RoutingCache(graph)  # shared: BGP convergence computed once

    bgp = FluidSimulator(graph, BgpProvider(graph, routing), FluidSimConfig())
    bgp_result = bgp.run(specs)

    builder = MifoPathBuilder(graph, routing, capable=frozenset(graph.nodes()))
    mifo = FluidSimulator(graph, MifoProvider(builder), FluidSimConfig())
    mifo_result = mifo.run(specs)

    # 3. Compare.
    for result in (bgp_result, mifo_result):
        th = result.throughputs_bps() / 1e6
        print(
            f"{result.scheme:>4s}: median {np.median(th):6.1f} Mbps | "
            f">=500 Mbps: {np.mean(th >= 500):5.1%} | "
            f"flows on alternative paths: {result.fraction_on_alternative():5.1%}"
        )
    gain = np.median(mifo_result.throughputs_bps()) / np.median(
        bgp_result.throughputs_bps()
    )
    print(f"MIFO median-throughput gain over BGP: {gain - 1:+.0%}")


if __name__ == "__main__":
    main()
