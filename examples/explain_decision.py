#!/usr/bin/env python3
"""Explain a MIFO forwarding decision, hop by hop.

`repro.analysis.explain_path` re-runs the deflection walk for one AS pair
under a given congestion state and narrates every decision: the tag bit on
entry, the default next hop and its state, every RIB candidate with its
valley-free verdict and measured spare capacity, and the greedy pick.

The scenario: a mid-size Internet where a transit AS's default egress is
congested — one deflection, fully explained.

Run:  python examples/explain_decision.py
"""

from repro.analysis import explain_path
from repro.bgp import RoutingCache
from repro.mifo import MifoPathBuilder
from repro.topology import TopologyConfig, generate_topology


def main() -> None:
    graph = generate_topology(TopologyConfig(n_ases=200, seed=11))
    routing = RoutingCache(graph)
    builder = MifoPathBuilder(graph, routing, frozenset(graph.nodes()))

    # Pick a pair whose default path has >= 3 hops so there is a transit
    # AS to congest.
    src, dst = None, None
    for candidate_dst in range(150, 200):
        r = routing(candidate_dst)
        for candidate_src in range(100, 150):
            if (
                candidate_src != candidate_dst
                and r.has_route(candidate_src)
                and len(r.best_path(candidate_src)) >= 4
                and r.alternatives(r.best_path(candidate_src)[1])
            ):
                src, dst = candidate_src, candidate_dst
                break
        if src is not None:
            break
    assert src is not None, "no suitable pair found"

    default = routing(dst).best_path(src)
    hot_link = (default[1], default[2])  # congest the 2nd hop's egress
    congested = lambda u, v: (u, v) == hot_link
    spare = lambda u, v: float(1e9 - ((u * 13 + v * 7) % 10) * 5e7)

    print(f"scenario: link AS{hot_link[0]} -> AS{hot_link[1]} is congested\n")
    explanation = explain_path(builder, src, dst, congested, spare)
    print(explanation.describe())


if __name__ == "__main__":
    main()
