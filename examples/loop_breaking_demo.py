#!/usr/bin/env python3
"""The paper's Fig-2(a) loop, and how the one-bit Tag-Check breaks it.

Three ASes (1, 2, 3) peer with each other; AS 0 is everyone's customer.
Each AS's default route to AS 0 is its direct link; the peers offer
alternatives.  When every direct link congests simultaneously, naive
deflection sends the packet clockwise forever: 1 -> 2 -> 3 -> 1 -> ...

MIFO tags each packet with one bit ("did this packet enter from a
customer?") and checks it before every deflection (paper Eq. 3).  This
script walks a packet through both variants and prints what happens.

Run:  python examples/loop_breaking_demo.py
"""

from repro.bgp import RoutingCache
from repro.errors import LoopDetectedError
from repro.mifo import MifoPathBuilder
from repro.topology import ASGraph


def build_fig2a() -> ASGraph:
    return ASGraph.from_links(
        p2c=[(1, 0), (2, 0), (3, 0)],  # 0 is a customer of 1, 2 and 3
        peering=[(1, 2), (2, 3), (1, 3)],
    )


def main() -> None:
    graph = build_fig2a()
    routing = RoutingCache(graph)
    capable = frozenset(graph.nodes())

    # Every direct link toward AS 0 is congested — the worst case of
    # Fig. 2(a): each AS wants to push the packet sideways to a peer.
    congested = lambda u, v: v == 0
    spare = lambda u, v: 1.0

    print("topology: peers 1-2-3 above shared customer 0; links *->0 congested")
    print()

    print("MIFO with Tag-Check (the paper's design):")
    builder = MifoPathBuilder(
        graph, routing, capable, deflect_uncongested_only=False
    )
    outcome = builder.build_path(1, 0, congested, spare)
    print(f"  packet path: {' -> '.join(map(str, outcome.path))}")
    print(f"  deflections: {outcome.deflections}")
    print(
        "  The source deflects once (own traffic may start in any\n"
        "  direction), but the peer cannot deflect again: its tag bit is 0\n"
        "  (arrived from a peer) and the next peer is not a customer, so\n"
        "  Eq. 3 fails and the packet falls back to the direct link.\n"
    )

    print("Same situation with the Tag-Check ablated:")
    naive = MifoPathBuilder(
        graph,
        routing,
        capable,
        tag_check_enabled=False,
        deflect_uncongested_only=False,
    )
    try:
        naive.build_path(1, 0, congested, spare)
        print("  (no loop — unexpected!)")
    except LoopDetectedError as exc:
        print(f"  LOOP: {' -> '.join(map(str, exc.path))} ...")
        print(
            "  Exactly the paper's Fig-2(a) failure: every AS keeps\n"
            "  handing the packet to another peer, forever."
        )


if __name__ == "__main__":
    main()
