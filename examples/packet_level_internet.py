#!/usr/bin/env python3
"""A packet-level Internet, auto-built from an AS graph.

The paper's simulation expands tier-1 ASes into border routers connected
in an iBGP full mesh (Section IV).  `repro.netbuild` automates exactly
that: hand it an AS graph, the set of ASes to expand, the MIFO deployment
set and host locations, and it derives every FIB from the BGP control
plane, wires the MIFO engines and starts the measurement daemons.

This example builds a ~40-AS Internet, expands the tier-1 core, races
several TCP flows toward one region under BGP and under MIFO, and prints
the per-router forwarding counters — deflections, encapsulations and the
(always-zero, by the Theorem) loop/TTL drops.

Run:  python examples/packet_level_internet.py
"""

import numpy as np

from repro.mifo import MifoEngineConfig
from repro.netbuild import BuildConfig, build_network
from repro.topology import TopologyConfig, generate_topology


def run_once(graph, *, mifo: bool, hosts, flows):
    tier1 = set(graph.tier1_ases())
    built = build_network(
        graph,
        expand=tier1,
        mifo_capable=set(graph.nodes()) if mifo else set(),
        hosts_at=hosts,
        config=BuildConfig(
            mifo_config=MifoEngineConfig(congestion_threshold=0.5)
        ),
    )
    senders = []
    for i, (src_host, dst_host, nbytes, delay) in enumerate(flows, start=1):
        _, h = built.hosts[src_host]
        senders.append(h.start_flow(i, dst_host, nbytes, delay=delay))
    built.run(until=60.0)
    assert all(s.completed for s in senders), "a flow did not complete"
    makespan = max(s.finish_time for s in senders)
    goodputs = np.array([s.goodput_bps for s in senders]) / 1e6
    return built, makespan, goodputs


def pick_scenario(graph):
    """A multihomed stub as the traffic source: all its hosts' flows exit
    through one default provider link, the classic congested-egress case
    MIFO deflects around (Fig. 1)."""
    from repro.bgp import RoutingCache

    routing = RoutingCache(graph)
    stubs = [s for s in graph.stub_ases() if len(graph.providers(s)) >= 2]
    far = [n for n in graph.nodes() if n not in stubs][:8]
    for src in stubs:
        # destinations whose default route leaves src via the same provider
        dests = [
            d
            for d in far
            if d != src
            and routing(d).has_route(src)
            and routing(d).next_hop(src) == routing(far[0]).next_hop(src)
            and len(routing(d).alternatives(src)) >= 1
        ]
        if len(dests) >= 3:
            return src, dests[:3]
    raise RuntimeError("no suitable scenario in this topology")


def main() -> None:
    graph = generate_topology(TopologyConfig(n_ases=40, n_tier1=3, seed=13))
    src, dests = pick_scenario(graph)
    print(
        f"topology: {len(graph)} ASes, tier-1 core {graph.tier1_ases()} "
        f"expanded to router level (iBGP full mesh)"
    )
    print(
        f"source: stub AS {src} (providers {graph.providers(src)}), "
        f"three hosts; destinations: ASes {dests} — all defaults exit via "
        f"the same provider link"
    )

    hosts = [src, src, src] + dests
    flows = [
        (f"H{src}.1", f"H{dests[0]}", 3e6, 0.0),
        (f"H{src}.2", f"H{dests[1]}", 3e6, 0.0),
        (f"H{src}.3", f"H{dests[2]}", 3e6, 0.002),
    ]

    for mifo in (False, True):
        built, makespan, goodputs = run_once(graph, mifo=mifo, hosts=hosts, flows=flows)
        label = "MIFO" if mifo else "BGP "
        print(
            f"{label}: makespan {makespan * 1e3:7.1f} ms | "
            f"goodputs {np.round(goodputs, 0)} Mbps | "
            f"deflected {built.counters_total('deflected'):5d} | "
            f"encapsulated {built.counters_total('encapsulated'):5d} | "
            f"valley drops {built.counters_total('dropped_valley')} | "
            f"ttl drops {built.counters_total('dropped_ttl')}"
        )


if __name__ == "__main__":
    main()
