#!/usr/bin/env python3
"""Partial-deployment study — Figures 5(b,c), 7 and 8 in one sweep.

MIFO deploys per AS and benefits unilaterally; MIRO needs both negotiation
ends deployed.  This example sweeps the deployment ratio and reports, for
each level: median flow throughput, the fraction of flows on alternative
paths (Fig 8), and the median number of available paths per AS pair
(Fig 7) — showing the paper's incremental-deployment story end to end.

Run:  python examples/partial_deployment_study.py [--ratios 0.1 0.25 0.5 1.0]
"""

import argparse

import numpy as np

from repro.bgp import RoutingCache
from repro.experiments.common import deployment_sample
from repro.flowsim import FluidSimConfig, FluidSimulator, MifoProvider
from repro.metrics import diversity_counts
from repro.mifo import MifoPathBuilder
from repro.miro import MiroRouting
from repro.topology import TopologyConfig, generate_topology
from repro.traffic import TrafficConfig, uniform_matrix


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--ratios", type=float, nargs="+", default=[0.1, 0.25, 0.5, 0.75, 1.0]
    )
    parser.add_argument("--n-ases", type=int, default=1000)
    parser.add_argument("--n-flows", type=int, default=1000)
    args = parser.parse_args()

    graph = generate_topology(TopologyConfig(n_ases=args.n_ases))
    routing = RoutingCache(graph)
    specs = uniform_matrix(
        graph, TrafficConfig(n_flows=args.n_flows, arrival_rate=1200.0, seed=5)
    )
    rng = np.random.default_rng(1)
    nodes = np.fromiter(graph.nodes(), dtype=np.int64)
    dests = rng.choice(nodes, size=12, replace=False)
    pairs = [
        (int(rng.choice(nodes)), int(d)) for d in dests for _ in range(8)
    ]
    pairs = [(s, d) for s, d in pairs if s != d]

    print(f"{'deploy':>7s} | {'median Mbps':>11s} | {'on alt paths':>12s} | {'paths/pair':>10s}")
    print("-" * 52)
    for ratio in args.ratios:
        capable = deployment_sample(graph, ratio)
        builder = MifoPathBuilder(graph, routing, capable)
        result = FluidSimulator(graph, MifoProvider(builder), FluidSimConfig()).run(specs)
        th = result.throughputs_bps() / 1e6

        miro = MiroRouting(graph, routing, capable)
        mifo_counts, _miro_counts = diversity_counts(
            graph, routing, pairs, mifo_capable=capable, miro_routing=miro
        )
        print(
            f"{ratio:>6.0%} | {np.median(th):>11.0f} | "
            f"{result.fraction_on_alternative():>12.1%} | "
            f"{np.median(mifo_counts):>10.0f}"
        )


if __name__ == "__main__":
    main()
