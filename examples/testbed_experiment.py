#!/usr/bin/env python3
"""Reproduce the paper's testbed experiment (Figures 11 & 12).

Rebuilds the six-AS, eleven-router testbed at packet level (TCP Reno
sources, drop-tail queues, the MIFO forwarding engine running Algorithm 1
on every router), runs the dueling S1->D1 / S2->D2 flow trains under BGP
and under MIFO, and prints the aggregate-throughput and flow-completion
comparison.  Paper headline: +81% aggregate throughput.

Run:  python examples/testbed_experiment.py            (scaled, ~15 s)
      python examples/testbed_experiment.py --paper    (full 100 MB x 30, slow)
"""

import argparse

from repro.experiments import fig12


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--paper",
        action="store_true",
        help="run the paper's exact parameters (2 x 30 x 100 MB, 1 KB packets)",
    )
    parser.add_argument(
        "--flows", type=int, default=None, help="flows per source (override)"
    )
    args = parser.parse_args()

    config = fig12.TestbedConfig.paper_scale() if args.paper else fig12.TestbedConfig()
    if args.flows is not None:
        import dataclasses

        config = dataclasses.replace(config, flows_per_source=args.flows)

    print(
        f"testbed: 2 sources x {config.flows_per_source} sequential TCP flows "
        f"x {config.flow_size_bytes / 1e6:.0f} MB, "
        f"{config.link_rate_bps / 1e9:.0f} Gbps links, "
        f"{config.mss} B segments"
    )
    print("running BGP, then MIFO ...")
    result = fig12.run(config=config)
    print()
    print(result.render())


if __name__ == "__main__":
    main()
