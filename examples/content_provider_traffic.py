#!/usr/bin/env python3
"""Content-provider (power-law) traffic study — the paper's Fig-6 workload.

The paper's second traffic model treats popular content providers as the
sources (Google, Facebook, ...), with the i-th ranked provider producing a
Zipf-distributed share F(i) = a * i^-alpha of the flows, consumed by stub
ASes.  This example sweeps the skew alpha and shows how conventional BGP
degrades as traffic concentrates on few default trees while MIFO holds up
through multi-path forwarding.

Run:  python examples/content_provider_traffic.py [--alpha 0.8 1.0 1.2]
"""

import argparse

import numpy as np

from repro.bgp import RoutingCache
from repro.experiments.common import deployment_sample
from repro.flowsim import BgpProvider, FluidSimConfig, FluidSimulator, MifoProvider, MiroProvider
from repro.mifo import MifoPathBuilder
from repro.miro import MiroRouting
from repro.topology import TopologyConfig, generate_topology
from repro.traffic import TrafficConfig, content_provider_ranking, powerlaw_matrix


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--alpha", type=float, nargs="+", default=[0.8, 1.0, 1.2])
    parser.add_argument("--n-ases", type=int, default=1000)
    parser.add_argument("--n-flows", type=int, default=1200)
    parser.add_argument("--deployment", type=float, default=0.5)
    args = parser.parse_args()

    graph = generate_topology(TopologyConfig(n_ases=args.n_ases))
    routing = RoutingCache(graph)
    capable = deployment_sample(graph, args.deployment)
    ranked = content_provider_ranking(graph)
    print(
        f"{args.n_ases} ASes; top content providers by connectivity: "
        f"{ranked[:5]} ...; deployment {args.deployment:.0%}"
    )

    providers = {
        "BGP": BgpProvider(graph, routing),
        "MIRO": MiroProvider(MiroRouting(graph, routing, capable)),
        "MIFO": MifoProvider(MifoPathBuilder(graph, routing, capable)),
    }

    header = f"{'alpha':>6s} | " + " | ".join(f"{n:>18s}" for n in providers)
    print()
    print(header + "      (median Mbps / % of flows >= 500 Mbps)")
    print("-" * len(header))
    for alpha in args.alpha:
        specs = powerlaw_matrix(
            graph,
            TrafficConfig(
                n_flows=args.n_flows, arrival_rate=1200.0, alpha=alpha, seed=3
            ),
            n_providers=max(50, args.n_ases // 20),
        )
        cells = []
        for name, provider in providers.items():
            result = FluidSimulator(graph, provider, FluidSimConfig()).run(specs)
            th = result.throughputs_bps() / 1e6
            cells.append(f"{np.median(th):7.0f} / {np.mean(th >= 500):5.1%}")
        print(f"{alpha:>6.1f} | " + " | ".join(f"{c:>18s}" for c in cells))


if __name__ == "__main__":
    main()
