#!/usr/bin/env python3
"""Paper-scale propagation over a persistent shared-memory worker pool.

Builds a topology tier of the paper's 44,340-AS measured Internet
(default 5,000 ASes so the demo finishes in seconds — pass ``--ases
44340`` for the real thing), exports the frozen CSR arrays into named
shared memory once, and streams destination shards through one standing
worker pool — the access pattern of a scenario timeline or service
session, where propagation arrives as many small batches and
fork-per-run pool spin-up would dominate.

Printed at the end: dests/sec for (a) serial in-process convergence,
(b) fork-per-run pools, (c) the persistent pool, plus proof that all
three produced identical routes and that the shared-memory segment is
gone afterwards.  See docs/scaling.md for the full guide.

Run:  python examples/paper_scale_run.py [--ases N] [--workers N]
"""

import argparse
import os
import time

from repro.bgp.parallel import ParallelRoutingEngine
from repro.topology.generator import TopologyConfig, generate_topology

N_SHARDS = 8
SHARD_SIZE = 3


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--ases", type=int, default=5_000)
    parser.add_argument("--workers", type=int, default=2)
    args = parser.parse_args()

    print(f"building a {args.ases:,}-AS topology ...")
    t0 = time.perf_counter()
    graph = generate_topology(TopologyConfig(n_ases=args.ases, seed=2014))
    graph.csr()
    print(f"  built + CSR-frozen in {time.perf_counter() - t0:.1f}s")

    shards = [
        list(range(i * SHARD_SIZE, (i + 1) * SHARD_SIZE)) for i in range(N_SHARDS)
    ]
    n_dests = N_SHARDS * SHARD_SIZE

    # (a) serial baseline — also the correctness reference.
    serial_engine = ParallelRoutingEngine(graph, n_workers=1)
    t0 = time.perf_counter()
    reference = {}
    for shard in shards:
        reference.update(serial_engine.compute_many(shard))
    serial_s = time.perf_counter() - t0

    # (b) fork-per-run: every shard pays pool spin-up.
    fork_engine = ParallelRoutingEngine(graph, n_workers=args.workers)
    t0 = time.perf_counter()
    fork_routes = {}
    for shard in shards:
        fork_routes.update(fork_engine.compute_many(shard))
    fork_s = time.perf_counter() - t0

    # (c) persistent: CSR exported to shared memory once, one standing pool.
    with ParallelRoutingEngine(
        graph, n_workers=args.workers, persistent=True
    ) as engine:
        engine.compute_many(shards[0])  # spin-up paid here, once
        segment = engine.segment_name
        t0 = time.perf_counter()
        pool_routes = {}
        for shard in shards:
            pool_routes.update(engine.compute_many(shard))
        persistent_s = time.perf_counter() - t0
        print(f"shared CSR segment: /dev/shm/{segment}")

    identical = all(
        pool_routes[d].best_path(0) == reference[d].best_path(0)
        and fork_routes[d].best_path(0) == reference[d].best_path(0)
        and pool_routes[d].reachable_count() == reference[d].reachable_count()
        for d in reference
    )
    segment_gone = segment is not None and not os.path.exists(f"/dev/shm/{segment}")

    print(f"\n{n_dests} destinations in {N_SHARDS} shards of {SHARD_SIZE}:")
    print(f"  serial         : {serial_s:7.2f}s ({n_dests / serial_s:7.1f} dests/s)")
    print(
        f"  fork-per-run   : {fork_s:7.2f}s ({n_dests / fork_s:7.1f} dests/s)"
        f"  [{args.workers} workers x {N_SHARDS} pools]"
    )
    print(
        f"  persistent pool: {persistent_s:7.2f}s "
        f"({n_dests / persistent_s:7.1f} dests/s)"
        f"  [{args.workers} workers, 1 pool]  "
        f"{fork_s / persistent_s:.1f}x vs fork-per-run"
    )
    print(f"  routes identical across all three modes: {identical}")
    print(f"  segment unlinked after close: {segment_gone}")


if __name__ == "__main__":
    main()
