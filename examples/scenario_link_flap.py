#!/usr/bin/env python3
"""Dynamic scenario walkthrough: a link flaps, MIFO adapts, and the
incremental control plane does almost no work.

Plays the built-in ``link_flap`` timeline (the busiest link fails,
recovers, fails and recovers again) over a persistent flow population on
a 300-AS synthetic Internet, twice — once with the recompute-everything
control plane and once with incremental dirty-set re-propagation — then
shows that both produced *identical* per-event dynamics.  The busiest
link dirties most destinations, so the epilogue replays the ``edge_flap``
timeline — a small peering link, where real interdomain churn
concentrates — to show the incremental engine rebasing nearly every
destination instead of re-converging it.

Run:  python examples/scenario_link_flap.py
"""

from repro.experiments import scenario


def main() -> None:
    runs = {}
    for mode in ("full", "incremental"):
        result = scenario.run(
            "test", scenario="link_flap", mode=mode, crosscheck=True
        )
        runs[mode] = result
        print(result.render())
        print()

    # The cross-validation contract: modes only differ in provenance.
    payloads = {
        mode: r.to_json(include_provenance=False) for mode, r in runs.items()
    }
    assert payloads["full"] == payloads["incremental"]
    print("determinism-checked payloads are byte-identical across modes")

    # Where incrementality pays: churn at the network *edge* leaves most
    # destinations provably untouched, so their converged views are
    # rebased onto the new graph with zero convergence work.
    print()
    edge = scenario.run("test", scenario="edge_flap", mode="incremental")
    print(edge.render())
    eng = edge.meta["scenario_engine"]
    assert isinstance(eng, dict)
    print(
        f"\nedge_flap, incremental mode: {eng['dests_recomputed']} "
        f"destination(s) re-converged vs {eng['dests_rebased']} rebased "
        f"unchanged ({eng['warm_hits']} memoized max-min solve(s))"
    )


if __name__ == "__main__":
    main()
