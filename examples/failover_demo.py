#!/usr/bin/env python3
"""Fast data-plane failover: what MIFO's congestion signal buys on a
link failure.

When a link dies, the upstream tx queue backs up within milliseconds —
the same queuing-ratio signal MIFO uses for congestion.  The border
router deflects onto its RIB alternative long before any control plane
could reconverge; plain BGP blackholes the traffic instead.

The scenario is the paper's Fig-11 testbed: default path 1→3→4→5, the
3→4 link fails 5 ms into a 200 Mbps constant-rate transfer.  The demo
prints the delivery timeline under BGP and under MIFO, then shows the
control plane's view of the same failure (the message-level BGP model
withdrawing and re-converging onto 3→6→5).

Run:  python examples/failover_demo.py
"""

from repro.bgp import BgpNetwork
from repro.mifo import MifoEngineConfig
from repro.netbuild import BuildConfig, build_network
from repro.topology import ASGraph


def build_fig11() -> ASGraph:
    return ASGraph.from_links(p2c=[(3, 1), (3, 2), (4, 3), (6, 3), (4, 5), (6, 5)])


def find_link(net, a_name, b_name):
    for link in net.links:
        names = {d.name for d in (link._end_a[0], link._end_b[0])}
        if names == {a_name, b_name}:
            return link
    raise RuntimeError(f"no link {a_name}-{b_name}")


def run_one(graph, *, mifo: bool):
    built = build_network(
        graph,
        expand={3},
        mifo_capable={3} if mifo else set(),
        hosts_at=[1, 5],
        config=BuildConfig(mifo_config=MifoEngineConfig(congestion_threshold=0.5)),
    )
    link = find_link(built.net, "R3.4", "R4")
    _, h1 = built.hosts["H1"]
    _, h5 = built.hosts["H5"]
    h1.start_cbr(1, "H5", rate_bps=200e6, total_bytes=5e6)
    built.net.sim.schedule(0.005, link.fail)

    timeline = []
    for t_ms in range(0, 260, 20):
        built.run(until=t_ms / 1000.0)
        timeline.append((t_ms, h5.cbr_received.get(1, 0)))
    return timeline, built


def main() -> None:
    graph = build_fig11()
    print("Fig-11 testbed; 200 Mb/s CBR transfer 1 -> 5; link 3-4 fails at t=5 ms")
    print()
    results = {}
    for mifo in (False, True):
        timeline, built = run_one(graph, mifo=mifo)
        results["MIFO" if mifo else "BGP"] = timeline
        label = "MIFO" if mifo else "BGP "
        series = "  ".join(f"{b / 1e6:4.1f}" for _t, b in timeline[1:None:3])
        print(f"{label} delivered MB at t=20,80,140,200 ms ...: {series}")
        if mifo:
            print(
                f"      deflected {built.counters_total('deflected')} packets "
                f"through the iBGP tunnel to the 3->6->5 alternative"
            )
    bgp_final = results["BGP"][-1][1]
    mifo_final = results["MIFO"][-1][1]
    print()
    print(
        f"final delivery: BGP {bgp_final / 1e6:.1f} MB (blackholed), "
        f"MIFO {mifo_final / 1e6:.1f} MB of 5.0 MB"
    )

    print()
    print("The control plane's view of the same failure (message-level BGP):")
    net = BgpNetwork(graph)
    net.announce(5)
    print(f"  before: AS3's path to AS5 = {net.best_path(3, 5)}")
    churn = net.fail_link(3, 4)
    print(
        f"  after withdraw + {churn} UPDATE messages of churn: "
        f"AS3's path = {net.best_path(3, 5)}"
    )
    print(
        "  MIFO reached the same alternative in ~a queue-fill time, with\n"
        "  zero messages — the data plane repaired before the control\n"
        "  plane even noticed."
    )


if __name__ == "__main__":
    main()
